package sim

// Property-style tests over randomized workloads: invariants that must
// hold for every scheduler on every input, plus failure-injection
// stress.

import (
	"testing"
	"testing/quick"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/stats"
)

// checkUniversalInvariants asserts the properties every run must have.
func checkUniversalInvariants(t *testing.T, name string, w *core.Workload, res *Result) {
	t.Helper()
	r := res.Report(w.MaxNodes)
	if r.Jobs+res.NeverSubmitted != len(w.Jobs) {
		t.Fatalf("%s: accounting: %d outcomes + %d never-submitted != %d jobs",
			name, r.Jobs, res.NeverSubmitted, len(w.Jobs))
	}
	for _, o := range res.Outcomes {
		if o.Start >= 0 && o.Start < o.Submit {
			t.Fatalf("%s: job %d started before submit", name, o.JobID)
		}
		if o.Finished() {
			if o.End <= o.Start && o.Runtime > 0 {
				t.Fatalf("%s: job %d non-positive span", name, o.JobID)
			}
			if bsld := o.BoundedSlowdown(); bsld < 1 {
				t.Fatalf("%s: job %d bounded slowdown %v < 1", name, o.JobID, bsld)
			}
		}
		if o.LostWork < 0 || o.Restarts < 0 {
			t.Fatalf("%s: job %d negative loss accounting", name, o.JobID)
		}
	}
	if r.Finished > 0 && (r.Utilization <= 0 || r.Utilization > 1) {
		t.Fatalf("%s: utilization %v", name, r.Utilization)
	}
}

func TestInvariantsAcrossSchedulersProperty(t *testing.T) {
	schedNames := []string{"fcfs", "firstfit", "sjf", "ljf", "smallest", "lxf", "easy", "easy+win", "cons", "cons+win", "gang"}
	f := func(seed int64) bool {
		w := lublin.Default().Generate(model.Config{
			MaxNodes: 32, Jobs: 150, Seed: seed, Load: 0.9, EstimateFactor: 1.5,
		})
		for _, name := range schedNames {
			s, err := sched.New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(w, s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkUniversalInvariants(t, name, w, res)
			if res.Report(32).Finished != 150 {
				t.Fatalf("%s: seed %d: not all jobs finished", name, seed)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestGangWorkConservation(t *testing.T) {
	// Time-shared execution stretches wall-clock but conserves work:
	// every gang job's span is at least its nominal runtime, and a job
	// alone on the matrix runs at full speed.
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 32, Jobs: 200, Seed: 77, Load: 0.8,
	})
	res, err := Run(w, sched.NewGang(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	jobsByID := map[int64]*core.Job{}
	for _, j := range w.Jobs {
		jobsByID[j.ID] = j
	}
	for _, o := range res.Outcomes {
		if !o.Finished() {
			continue
		}
		nominal := jobsByID[o.JobID].Runtime
		span := o.End - o.Start
		if span < nominal {
			t.Fatalf("job %d ran %ds < nominal %ds (work created from nothing)",
				o.JobID, span, nominal)
		}
		// Rates are at least 1/Slots, so the stretch is bounded.
		if span > 3*nominal+3 {
			t.Fatalf("job %d stretched %dx beyond the slot bound", o.JobID, span/nominal)
		}
	}
}

func TestOutageStorm(t *testing.T) {
	// Failure injection: dense random outages. The simulation must
	// terminate with consistent accounting regardless of policy.
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 32, Jobs: 200, Seed: 3, Load: 0.8, EstimateFactor: 2,
	})
	horizon := w.Span() + 30*86400
	storm := outage.Generate(outage.GeneratorConfig{
		Nodes: 32, Horizon: horizon,
		MTBF:         stats.Exponential{Lambda: 1.0 / 1800}, // every 30 min!
		Repair:       stats.Exponential{Lambda: 1.0 / 900},
		FailureNodes: stats.Constant{C: 2},
	}, 4)
	if len(storm.Records) < 100 {
		t.Fatalf("storm too gentle: %d outages", len(storm.Records))
	}
	for _, policy := range []struct {
		name string
		opts Options
	}{
		{"restart", Options{Outages: storm}},
		{"drop", Options{Outages: storm, DropKilled: true}},
	} {
		res, err := Run(w, sched.NewEASY(), policy.opts)
		if err != nil {
			t.Fatal(err)
		}
		checkUniversalInvariants(t, policy.name, w, res)
		r := res.Report(32)
		if policy.name == "drop" && r.Dropped == 0 {
			t.Error("storm with drop policy killed nothing")
		}
		if policy.name == "restart" && r.Restarts == 0 {
			t.Error("storm with restart policy restarted nothing")
		}
	}
}

func TestMemoryModelEndToEnd(t *testing.T) {
	// The Section 2.2 memory extension through the whole stack: a
	// memory-demanding workload on a heterogeneous machine with
	// memory-aware allocation.
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 32, Jobs: 300, Seed: 5, Load: 0.6, Memory: true,
		MemMeanKB: 64 * 1024,
	})
	// Half small-memory nodes, half big.
	mems := make([]int64, 32)
	for i := range mems {
		if i < 16 {
			mems[i] = 128 * 1024 // 128 MB
		} else {
			mems[i] = 8 * 1024 * 1024 // 8 GB
		}
	}
	res, err := Run(w, sched.NewFirstFit(), Options{NodeMem: mems, MemAware: true})
	if err != nil {
		t.Fatal(err)
	}
	checkUniversalInvariants(t, "mem-aware", w, res)
	r := res.Report(32)
	// A job is feasible iff enough nodes satisfy its memory request:
	// all 32 for small requests, only the 16 big nodes for large ones.
	feasible := 0
	for _, j := range w.Jobs {
		switch {
		case j.ReqMemPerProc <= 128*1024:
			feasible++
		case j.ReqMemPerProc <= 8*1024*1024 && j.Size <= 16:
			feasible++
		}
	}
	if r.Finished < feasible {
		t.Errorf("finished %d < feasible %d", r.Finished, feasible)
	}
	if r.Finished == len(w.Jobs) {
		t.Error("expected some memory-infeasible jobs in this workload")
	}

	// Contrast: the memory-oblivious run has no memory gating, so every
	// job completes.
	obl, err := Run(w, sched.NewFirstFit(), Options{NodeMem: mems})
	if err != nil {
		t.Fatal(err)
	}
	if obl.Report(32).Finished != len(w.Jobs) {
		t.Errorf("memory-oblivious run should finish everything, got %d", obl.Report(32).Finished)
	}
}

func TestHighLoadLeavesQueueNonEmptyAtHorizon(t *testing.T) {
	// Sanity for horizon semantics under overload: cutting the run
	// mid-saturation reports unfinished jobs rather than losing them.
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 16, Jobs: 300, Seed: 6, Load: 2.5,
	})
	res, err := Run(w, sched.NewFCFS(), Options{Horizon: w.Span() / 2})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report(16)
	if r.Unfinished == 0 {
		t.Error("overloaded horizon run should leave unfinished jobs")
	}
	checkUniversalInvariants(t, "horizon", w, res)
}
