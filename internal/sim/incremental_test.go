package sim

// Tests pinning the incrementally-maintained scheduler views against
// their from-scratch reference computations: the ExpEnd-ordered running
// set (maintained on start/finish/kill instead of re-sorted per
// callback) and the visibility-filtered outage/reservation windows.

import (
	"sort"
	"testing"

	"parsched/internal/des"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
)

// checkRunningOrder asserts Running() is strictly sorted by
// (ExpEnd, job ID) and equals a from-scratch rebuild from the running
// map — the order the pre-incremental implementation produced.
func checkRunningOrder(t *testing.T, sm *Instance) {
	t.Helper()
	got := sm.Running()
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.ExpEnd > b.ExpEnd || (a.ExpEnd == b.ExpEnd && a.Job.ID >= b.Job.ID) {
			t.Fatalf("Running() out of order at %d: (%d,%d) before (%d,%d)",
				i, a.ExpEnd, a.Job.ID, b.ExpEnd, b.Job.ID)
		}
	}
	if len(got) != len(sm.running) {
		t.Fatalf("Running() has %d entries, map has %d", len(got), len(sm.running))
	}
	want := make([]sched.RunningJob, 0, len(sm.running))
	for _, rs := range sm.running {
		want = append(want, sched.RunningJob{Job: rs.job, Size: rs.size, Start: rs.start, ExpEnd: rs.expEnd})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].ExpEnd != want[j].ExpEnd {
			return want[i].ExpEnd < want[j].ExpEnd
		}
		return want[i].Job.ID < want[j].Job.ID
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Running()[%d] = %+v, reference = %+v", i, got[i], want[i])
		}
	}
}

// TestRunningSortedAcrossOutageKills steps a failure-heavy EASY run
// event by event, checking the running-set order after every event —
// kills remove jobs from the middle of the order.
func TestRunningSortedAcrossOutageKills(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 16, Jobs: 200, Seed: 11, Load: 0.9, EstimateFactor: 1.5,
	})
	log := &outage.Log{}
	span := w.Jobs[len(w.Jobs)-1].Submit
	for i := int64(0); i < 12; i++ {
		start := (i + 1) * span / 13
		log.Records = append(log.Records, outage.Record{
			ID: i + 1, Announced: start, Start: start, End: start + 3600,
			Kind: outage.CPUFailure, Nodes: []int64{i % 16, (i + 5) % 16},
		})
	}
	engine := des.NewEngine(len(w.Jobs))
	sm, err := NewInstance(engine, w.Name, w.MaxNodes, sched.NewEASY(), Options{Outages: log})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Clone().Jobs {
		sm.SubmitAt(j, j.Submit)
	}
	scheduleOutages(engine, sm, log)
	kills := 0
	for engine.Step() {
		checkRunningOrder(t, sm)
		for _, o := range sm.outcomes {
			if o.Restarts > 0 {
				kills++
				break
			}
		}
	}
	if kills == 0 {
		t.Fatal("outage log produced no kills; test exercises nothing")
	}
	if len(sm.running) != 0 || len(sm.runOrder) != 0 {
		t.Fatalf("drained run left %d/%d running entries", len(sm.running), len(sm.runOrder))
	}
}

// TestRunningSortedAcrossRateChanges steps a gang-scheduled run, whose
// shared jobs change execution rate as the Ousterhout matrix refills.
func TestRunningSortedAcrossRateChanges(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 16, Jobs: 200, Seed: 3, Load: 1.1, EstimateFactor: 1.5,
	})
	s, err := sched.New("gang")
	if err != nil {
		t.Fatal(err)
	}
	engine := des.NewEngine(len(w.Jobs))
	sm, err := NewInstance(engine, w.Name, w.MaxNodes, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, j := range w.Clone().Jobs {
		sm.SubmitAt(j, j.Submit)
	}
	for engine.Step() {
		checkRunningOrder(t, sm)
		for _, rs := range sm.running {
			if rs.shared {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("gang run produced no shared jobs; test exercises nothing")
	}
}

// TestVisibleWindowsMatchesReference replays the retired per-call
// filter over a shadow copy of the window list and checks the
// compacting implementation produces identical output at every instant.
func TestVisibleWindowsMatchesReference(t *testing.T) {
	mk := func() []timedWindow {
		return []timedWindow{
			{win: sched.Window{Start: 0, End: 50, Procs: 1}, announced: 0},
			{win: sched.Window{Start: 100, End: 200, Procs: 2}, announced: 40},
			{win: sched.Window{Start: 60, End: 70, Procs: 3}, announced: 60},
			{win: sched.Window{Start: 10, End: 1000, Procs: 4}, announced: 0},
			{win: sched.Window{Start: PlanningHorizon + 500, End: PlanningHorizon + 600, Procs: 5}, announced: 0},
			{win: sched.Window{Start: 150, End: 160, Procs: 6}, announced: 150},
		}
	}
	reference := func(wins []timedWindow, now int64) []sched.Window {
		var out []sched.Window
		for _, tw := range wins {
			if tw.announced <= now && tw.win.End > now && tw.win.Start <= now+PlanningHorizon {
				out = append(out, tw.win)
			}
		}
		return out
	}
	shadow := mk()
	live := mk()
	var buf []sched.Window
	for _, now := range []int64{0, 10, 45, 55, 65, 99, 150, 250, 999, 1500, PlanningHorizon + 550} {
		want := reference(shadow, now)
		var until int64
		live, buf, until = visibleWindows(live, buf[:0], now, false)
		if len(buf) != len(want) {
			t.Fatalf("now=%d: got %v, want %v", now, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("now=%d: got %v, want %v", now, buf, want)
			}
		}
		// The memo bound promises the visible set is unchanged strictly
		// before `until`: re-deriving it at until-1 must match buf.
		if until <= now {
			t.Fatalf("now=%d: memo bound %d not in the future", now, until)
		}
		if probe := until - 1; probe > now {
			again := reference(shadow, probe)
			if len(again) != len(buf) {
				t.Fatalf("now=%d: visible set changed before memo bound %d: %v vs %v",
					now, until, again, buf)
			}
			for i := range again {
				if again[i] != buf[i] {
					t.Fatalf("now=%d: visible set changed before memo bound %d: %v vs %v",
						now, until, again, buf)
				}
			}
		}
	}
	// By the final instant only the far-future window's End is still
	// ahead of the clock; everything else must have been compacted out.
	if len(live) != 1 || live[0].win.Procs != 5 {
		t.Fatalf("compaction kept %v", live)
	}
}

// TestVisibleWindowsSortedMatchesReference runs the same probe battery
// over a Start-sorted window list and checks the binary-search fast
// path produces a visible set identical to the retired per-call filter,
// with a memo bound that never admits a stale set.
func TestVisibleWindowsSortedMatchesReference(t *testing.T) {
	mk := func() []timedWindow {
		return []timedWindow{
			{win: sched.Window{Start: 0, End: 50, Procs: 1}, announced: 0},
			{win: sched.Window{Start: 10, End: 1000, Procs: 4}, announced: 0},
			{win: sched.Window{Start: 60, End: 70, Procs: 3}, announced: 60},
			{win: sched.Window{Start: 100, End: 200, Procs: 2}, announced: 40},
			{win: sched.Window{Start: 150, End: 160, Procs: 6}, announced: 150},
			{win: sched.Window{Start: PlanningHorizon + 500, End: PlanningHorizon + 600, Procs: 5}, announced: 0},
			{win: sched.Window{Start: PlanningHorizon + 5000, End: PlanningHorizon + 5600, Procs: 7}, announced: 0},
		}
	}
	reference := func(wins []timedWindow, now int64) []sched.Window {
		var out []sched.Window
		for _, tw := range wins {
			if tw.announced <= now && tw.win.End > now && tw.win.Start <= now+PlanningHorizon {
				out = append(out, tw.win)
			}
		}
		return out
	}
	shadow := mk()
	live := mk()
	var buf []sched.Window
	for _, now := range []int64{0, 10, 45, 55, 65, 99, 150, 250, 999, 1500, PlanningHorizon + 550, PlanningHorizon + 5100} {
		want := reference(shadow, now)
		var until int64
		live, buf, until = visibleWindows(live, buf[:0], now, true)
		if len(buf) != len(want) {
			t.Fatalf("now=%d: got %v, want %v", now, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("now=%d: got %v, want %v", now, buf, want)
			}
		}
		if until <= now {
			t.Fatalf("now=%d: memo bound %d not in the future", now, until)
		}
		if probe := until - 1; probe > now {
			again := reference(shadow, probe)
			if len(again) != len(buf) {
				t.Fatalf("now=%d: visible set changed before memo bound %d: %v vs %v",
					now, until, again, buf)
			}
			for i := range again {
				if again[i] != buf[i] {
					t.Fatalf("now=%d: visible set changed before memo bound %d: %v vs %v",
						now, until, again, buf)
				}
			}
		}
		// Compaction must preserve Start order, or the next call's
		// binary search would be meaningless.
		for i := 1; i < len(live); i++ {
			if live[i].win.Start < live[i-1].win.Start {
				t.Fatalf("now=%d: compaction broke Start order: %v", now, live)
			}
		}
	}
	if len(live) != 1 || live[0].win.Procs != 7 {
		t.Fatalf("compaction kept %v", live)
	}
}
