package sim

import (
	"fmt"
	"sort"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/swf"
)

// RecordSWF converts a simulation result back into a standard workload
// file — the log the simulated machine's accounting system would have
// written. Wait times come from the schedule, runtimes from the actual
// executions, and kill/restart histories appear exactly as the standard
// prescribes: a whole-job summary line plus one partial-execution line
// per killed attempt (codes 2/3/4). Section 3.3 of the paper asks for
// such recording so that evaluations can be chained: simulate → record
// → re-analyze with the same tooling that consumes archive traces.
func RecordSWF(w *core.Workload, res *Result) *swf.Log {
	jobsByID := make(map[int64]*core.Job, len(w.Jobs))
	for _, j := range w.Jobs {
		jobsByID[j.ID] = j
	}

	log := &swf.Log{Header: swf.Header{
		Computer:    w.Name,
		Version:     swf.Version,
		MaxNodes:    int64(w.MaxNodes),
		Conversion:  fmt.Sprintf("parsched sim.RecordSWF (scheduler %s)", res.Scheduler),
		Information: "synthetic trace recorded from a parsched simulation",
	}}
	log.Header.Notes = append(log.Header.Notes,
		"wait times are outputs of the simulated scheduler, not of a real installation")

	// Sort by effective submittal: closed-loop feedback can reorder
	// submits relative to workload job IDs, and the standard requires
	// ascending submit times.
	outs := append([]metrics.Outcome(nil), res.Outcomes...)
	sort.SliceStable(outs, func(a, b int) bool {
		if outs[a].Submit != outs[b].Submit {
			return outs[a].Submit < outs[b].Submit
		}
		return outs[a].JobID < outs[b].JobID
	})

	jobNo := int64(0)
	for _, o := range outs {
		j := jobsByID[o.JobID]
		if j == nil {
			continue
		}
		jobNo++
		rec := swf.Record{
			JobID:        jobNo,
			Submit:       o.Submit,
			Wait:         swf.Missing,
			RunTime:      swf.Missing,
			Procs:        int64(o.Size),
			AvgCPU:       swf.Missing,
			UsedMem:      orMissingI(j.MemPerProc),
			ReqProcs:     int64(j.Size),
			ReqTime:      orMissingI(j.Estimate),
			ReqMem:       orMissingI(j.ReqMemPerProc),
			Status:       swf.StatusKilled,
			User:         natI(j.User),
			Group:        natI(j.Group),
			App:          natI(j.App),
			Queue:        j.Queue,
			Partition:    natI(j.Partition),
			PrecedingJob: swf.Missing,
			ThinkTime:    swf.Missing,
		}
		if o.Finished() {
			rec.Status = swf.StatusCompleted
			rec.Wait = o.Wait()
			rec.RunTime = o.Runtime
		} else if o.Start >= 0 {
			// Ran but did not finish inside the horizon: record what is
			// known, killed status.
			rec.Wait = o.Start - o.Submit
		}
		log.Records = append(log.Records, rec)

		// Killed attempts become partial-execution lines. The simulator
		// tracks only their count and total lost work, so the recorded
		// partials split the lost time evenly — enough to preserve the
		// job's total resource consumption in the log.
		if o.Restarts > 0 && o.Finished() {
			per := o.LostWork / int64(o.Restarts) / int64(maxIntOne(o.Size))
			emitPartials(log, rec, o, per)
			// The summary line's runtime must equal the sum of partial
			// runtimes per the standard; patch it accordingly.
			sumIdx := len(log.Records) - 1 - o.Restarts - 1
			log.Records[sumIdx].RunTime = rec.RunTime + int64(o.Restarts)*per
		}
	}
	return log
}

// emitPartials appends the partial-execution lines for a restarted job:
// o.Restarts killed attempts (code 2) followed by the successful final
// execution (code 3).
func emitPartials(log *swf.Log, summary swf.Record, o metrics.Outcome, perAttempt int64) {
	for k := 0; k < o.Restarts; k++ {
		p := summary
		p.Status = swf.StatusPartial
		p.RunTime = perAttempt
		if k > 0 {
			p.Submit = swf.Missing
		}
		log.Records = append(log.Records, p)
	}
	final := summary
	final.Status = swf.StatusPartialLastOK
	final.Submit = swf.Missing
	final.Wait = o.Wait()
	final.RunTime = o.Runtime
	log.Records = append(log.Records, final)
}

func orMissingI(v int64) int64 {
	if v <= 0 {
		return swf.Missing
	}
	return v
}

func natI(v int64) int64 {
	if v <= 0 {
		return 1
	}
	return v
}

func maxIntOne(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
