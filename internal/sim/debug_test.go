//go:build debugchecks

package sim

import (
	"strings"
	"testing"

	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/sched"
)

// Compiled only under -tags debugchecks: corrupts the runOrder mirror
// on purpose and requires verifyRunOrder to catch the divergence.

func debugInstance(t *testing.T) *Instance {
	t.Helper()
	sm, err := NewInstance(des.NewEngine(0), "debug", 16, sched.NewFCFS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func debugRunState(id, expEnd int64) *runState {
	return &runState{job: &core.Job{ID: id}, expEnd: expEnd}
}

func TestDebugRunOrderCorruptionCaught(t *testing.T) {
	sm := debugInstance(t)
	for i := int64(1); i <= 4; i++ {
		rs := debugRunState(i, i*100)
		sm.running[rs.job.ID] = rs
		sm.insertRunning(rs)
	}
	// Swap two entries: the next membership change must detect the
	// broken (ExpEnd, job ID) order.
	sm.runOrder[0], sm.runOrder[3] = sm.runOrder[3], sm.runOrder[0]
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "runOrder not sorted") {
			t.Fatalf("panic %v; want one containing %q", r, "runOrder not sorted")
		}
	}()
	rs := debugRunState(5, 500)
	sm.running[rs.job.ID] = rs
	sm.insertRunning(rs)
}

func TestDebugRunOrderMembershipDivergenceCaught(t *testing.T) {
	sm := debugInstance(t)
	rs := debugRunState(1, 100)
	sm.running[rs.job.ID] = rs
	sm.insertRunning(rs)
	// Drop the job from the map but not the mirror: the next
	// transition must see the length divergence.
	delete(sm.running, rs.job.ID)
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "running set has") {
			t.Fatalf("panic %v; want one containing %q", r, "running set has")
		}
	}()
	other := debugRunState(2, 200)
	sm.running[other.job.ID] = other
	sm.insertRunning(other)
}
