package sim

// Integration tests crossing module boundaries: scheduler dominance
// relations on realistic workloads, the gang-versus-space-slicing
// question of Section 2.2 (synchronization granularity via the
// internal-structure strawman), and cross-subsystem determinism.

import (
	"testing"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/downey"
	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/stats"
)

// TestBackfillDominanceAcrossSeeds asserts the headline community
// result on several independent workloads: EASY's mean wait never loses
// badly to FCFS, and usually wins by a wide margin.
func TestBackfillDominanceAcrossSeeds(t *testing.T) {
	wins := 0
	const trials = 5
	for seed := int64(1); seed <= trials; seed++ {
		w := lublin.Default().Generate(model.Config{
			MaxNodes: 64, Jobs: 800, Seed: seed, Load: 0.85, EstimateFactor: 2,
		})
		fc, err := Run(w, sched.NewFCFS(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		ez, err := Run(w, sched.NewEASY(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		fw := fc.Report(64).Wait.Mean
		ew := ez.Report(64).Wait.Mean
		if ew <= fw {
			wins++
		}
		if ew > 1.2*fw {
			t.Errorf("seed %d: EASY wait %v far worse than FCFS %v", seed, ew, fw)
		}
	}
	if wins < trials-1 {
		t.Errorf("EASY won only %d/%d trials against FCFS", wins, trials)
	}
}

// TestGangHelpsFineGrainSync reproduces the Section 2.2 discussion
// (Feitelson & Rudolph [22]): applications with frequent barriers
// suffer under uncoordinated time slicing but not under gang
// scheduling. The strawman structure model supplies the runtimes: the
// same job set is realized twice — once with gang-coscheduled phase
// costs, once with a per-barrier penalty for uncoordinated slicing —
// and both are run under the gang scheduler.
func TestGangHelpsFineGrainSync(t *testing.T) {
	rng := stats.NewRNG(5)
	// Expected wait for a descheduled peer at each barrier under
	// uncoordinated slicing — a fixed cost per barrier, independent of
	// how much computation sits between barriers.
	const perBarrierPenalty = 0.5 // seconds

	build := func(barriers int, granularity float64, coordinated bool) *core.Workload {
		w := &core.Workload{Name: "sync", MaxNodes: 32}
		for i := 0; i < 40; i++ {
			s := &core.Structure{
				Processes: 8, Barriers: barriers,
				Granularity: granularity, Variance: 0.1,
			}
			var rt float64
			if coordinated {
				rt = s.GangRuntime(rng)
			} else {
				rt = s.UncoordinatedRuntime(rng, perBarrierPenalty)
			}
			if rt < 1 {
				rt = 1
			}
			w.Jobs = append(w.Jobs, &core.Job{
				ID: int64(i + 1), Submit: int64(i * 10), Size: 8,
				Runtime: int64(rt), User: 1, Structure: s,
			})
		}
		return w
	}

	run := func(w *core.Workload) float64 {
		res, err := Run(w, sched.NewGang(3), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report(32).Response.Mean
	}

	// Fine grain: many barriers, short phases. Coarse: few barriers.
	fineGang := run(build(10000, 0.05, true))
	fineUnco := run(build(10000, 0.05, false))
	coarseGang := run(build(10, 50, true))
	coarseUnco := run(build(10, 50, false))

	finePenalty := fineUnco / fineGang
	coarsePenalty := coarseUnco / coarseGang
	if finePenalty < 1.2 {
		t.Errorf("fine-grain uncoordinated penalty %v, want substantial", finePenalty)
	}
	if coarsePenalty > 1.1 {
		t.Errorf("coarse-grain penalty %v should be negligible", coarsePenalty)
	}
	if finePenalty <= coarsePenalty {
		t.Errorf("penalty must grow with sync frequency: fine %v vs coarse %v", finePenalty, coarsePenalty)
	}
}

// TestMoldableAdapterHelpsOnDowneyWorkload checks the convergence story
// of Section 1.2: on a moldable workload at high load the adaptive
// scheduler (shrinking jobs to start them earlier) beats plain EASY on
// mean wait.
func TestMoldableAdapterHelpsOnDowneyWorkload(t *testing.T) {
	w := downey.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 600, Seed: 9, Load: 1.0, EstimateFactor: 1,
	})
	plain, err := Run(w, sched.NewEASY(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mold, err := Run(w, sched.NewMoldableEASY(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pw := plain.Report(64).Wait.Mean
	mw := mold.Report(64).Wait.Mean
	if mw >= pw {
		t.Errorf("moldable adapter wait %v should beat rigid EASY %v", mw, pw)
	}
}

// TestOutagePlusReservationsPlusFeedback exercises every simulator
// feature at once and checks global invariants survive the interaction.
func TestOutagePlusReservationsPlusFeedback(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 600, Seed: 13, Load: 0.8, EstimateFactor: 2,
	})
	core.InferFeedback(w, 3600)
	horizon := w.Span() + 14*86400
	olog := outage.Generate(outage.GeneratorConfig{
		Nodes: 64, Horizon: horizon,
		MTBF:              stats.Exponential{Lambda: 1.0 / (24 * 3600)},
		Repair:            stats.Constant{C: 1800},
		MaintenanceEvery:  7 * 86400,
		MaintenanceLength: 4 * 3600,
		MaintenanceLead:   86400,
	}, 17)
	resvs := []sched.Reservation{
		{ID: 1, Procs: 16, Start: 50000, End: 60000},
		{ID: 2, Procs: 32, Start: 200000, End: 220000},
	}
	res, err := Run(w, sched.NewEASYWindows(), Options{
		Feedback: true, Outages: olog, Reservations: resvs,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report(64)
	if r.Finished+r.Unfinished+res.NeverSubmitted != 600 {
		t.Fatalf("job accounting broken: %d + %d + %d != 600",
			r.Finished, r.Unfinished, res.NeverSubmitted)
	}
	if r.Finished < 500 {
		t.Fatalf("only %d/600 finished", r.Finished)
	}
	for _, o := range res.Outcomes {
		if o.Start >= 0 && o.Start < o.Submit {
			t.Fatal("job started before its effective submit")
		}
	}
	// Determinism across the full feature set.
	res2, err := Run(w, sched.NewEASYWindows(), Options{
		Feedback: true, Outages: olog, Reservations: resvs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Outcomes {
		if res.Outcomes[i] != res2.Outcomes[i] {
			t.Fatalf("nondeterminism at outcome %d", i)
		}
	}
}

// TestSJFvsFCFSSlowdownShape locks the metric-conflict precondition E2
// relies on: SJF beats FCFS on mean slowdown at high load.
func TestSJFvsFCFSSlowdownShape(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 800, Seed: 21, Load: 0.9, EstimateFactor: 2,
	})
	fc, _ := Run(w, sched.NewFCFS(), Options{})
	sj, _ := Run(w, sched.NewSJF(), Options{})
	if sj.Report(64).BSLD.Mean >= fc.Report(64).BSLD.Mean {
		t.Errorf("SJF slowdown %v should beat FCFS %v",
			sj.Report(64).BSLD.Mean, fc.Report(64).BSLD.Mean)
	}
}

// TestSpecBuiltSchedulersRun drives spec-grammar-built schedulers
// through full simulations: every spec completes the workload, and
// the reservation-depth parameter interpolates between EASY and
// conservative rather than breaking either.
func TestSpecBuiltSchedulersRun(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 600, Seed: 4, Load: 0.85, EstimateFactor: 2,
	})
	waits := map[string]float64{}
	for _, spec := range []string{
		"easy", "easy(reserve=2)", "easy(reserve=4, window)",
		"cons", "fcfs(drain)", "sjf(mold)", "gang(mpl=4)",
	} {
		s, err := sched.New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		res, err := Run(w, s, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		r := res.Report(w.MaxNodes)
		if r.Finished != len(w.Jobs) {
			t.Errorf("%s finished %d/%d jobs", spec, r.Finished, len(w.Jobs))
		}
		waits[spec] = r.Wait.Mean
	}
	// Deeper reservations trade backfill freedom for fairness; the
	// result must stay in the EASY..FCFS band, not collapse.
	if waits["easy(reserve=2)"] <= 0 {
		t.Error("reserve=2 produced a degenerate zero wait")
	}
}
