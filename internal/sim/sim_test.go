package sim

import (
	"testing"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/stats"
)

// wl builds a workload from (submit, size, runtime) triples on a
// machine of nodes processors.
func wl(nodes int, specs ...[3]int64) *core.Workload {
	w := &core.Workload{Name: "test", MaxNodes: nodes}
	for i, s := range specs {
		w.Jobs = append(w.Jobs, &core.Job{
			ID: int64(i + 1), Submit: s[0], Size: int(s[1]), Runtime: s[2], User: 1,
		})
	}
	return w
}

func mustRun(t *testing.T, w *core.Workload, s sched.Scheduler, opts Options) *Result {
	t.Helper()
	res, err := Run(w, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func outcomeByID(res *Result, id int64) metrics.Outcome {
	for _, o := range res.Outcomes {
		if o.JobID == id {
			return o
		}
	}
	return metrics.Outcome{JobID: -1}
}

func TestFCFSSequence(t *testing.T) {
	// Two 8-proc jobs on an 8-proc machine: strictly sequential.
	w := wl(8, [3]int64{0, 8, 100}, [3]int64{10, 8, 100})
	res := mustRun(t, w, sched.NewFCFS(), Options{})
	o1, o2 := outcomeByID(res, 1), outcomeByID(res, 2)
	if o1.Start != 0 || o1.End != 100 {
		t.Fatalf("job 1: %+v", o1)
	}
	if o2.Start != 100 || o2.End != 200 {
		t.Fatalf("job 2: %+v", o2)
	}
	if o2.Wait() != 90 {
		t.Fatalf("job 2 wait = %d", o2.Wait())
	}
}

func TestParallelStart(t *testing.T) {
	w := wl(16, [3]int64{0, 8, 100}, [3]int64{0, 8, 100})
	res := mustRun(t, w, sched.NewFCFS(), Options{})
	if outcomeByID(res, 2).Start != 0 {
		t.Fatal("both jobs fit simultaneously")
	}
}

func TestEASYBeatsFCFSOnBackfillableWorkload(t *testing.T) {
	// Classic scenario: wide job blocks FCFS; EASY backfills the small
	// ones.
	specs := [][3]int64{
		{0, 14, 1000}, // wide long
		{1, 14, 100},  // wide short: blocked either way
		{2, 2, 50},    // small: EASY backfills
		{3, 2, 50},    // small
	}
	w1 := wl(16, specs...)
	w2 := wl(16, specs...)
	fcfs := mustRun(t, w1, sched.NewFCFS(), Options{})
	easy := mustRun(t, w2, sched.NewEASY(), Options{})
	rf := fcfs.Report(16)
	re := easy.Report(16)
	if re.Wait.Mean >= rf.Wait.Mean {
		t.Fatalf("EASY mean wait %v should beat FCFS %v", re.Wait.Mean, rf.Wait.Mean)
	}
	// Job 3 backfills into the 2 free processors at once; job 4 takes
	// its place when it finishes (machine is 14+2 = 16 full meanwhile).
	if outcomeByID(easy, 3).Start != 2 || outcomeByID(easy, 4).Start != 52 {
		t.Fatalf("backfill starts: %+v %+v", outcomeByID(easy, 3), outcomeByID(easy, 4))
	}
}

func TestSafetyNoOversubscription(t *testing.T) {
	// Brute-force safety check across schedulers on a random workload:
	// at no instant may allocated processors exceed the machine.
	// (The cluster panics on oversubscription, so simply running is the
	// assertion; we also check outcome sanity.)
	m := lublin.Default()
	w := m.Generate(model.Config{MaxNodes: 64, Jobs: 400, Seed: 3, Load: 0.9, EstimateFactor: 2})
	for _, name := range []string{"fcfs", "sjf", "easy", "cons", "firstfit", "lxf"} {
		s, err := sched.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, w, s, Options{})
		r := res.Report(64)
		if r.Finished != 400 {
			t.Errorf("%s: finished %d/400", name, r.Finished)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s: utilization %v out of range", name, r.Utilization)
		}
		for _, o := range res.Outcomes {
			if o.Start >= 0 && o.Start < o.Submit {
				t.Errorf("%s: job %d started before submit", name, o.JobID)
			}
			if o.Finished() && o.End < o.Start {
				t.Errorf("%s: job %d ends before start", name, o.JobID)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := lublin.Default()
	w := m.Generate(model.Config{MaxNodes: 32, Jobs: 300, Seed: 5, Load: 0.8})
	a := mustRun(t, w, sched.NewEASY(), Options{})
	b := mustRun(t, w, sched.NewEASY(), Options{})
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
	}
}

func TestWorkloadNotMutated(t *testing.T) {
	w := wl(8, [3]int64{0, 8, 100})
	w.Jobs[0].Class = core.Moldable
	w.Jobs[0].Speedup = core.AmdahlSpeedup{F: 0}
	w.Jobs[0].MinSize = 1
	before := *w.Jobs[0]
	mustRun(t, w, sched.NewMoldableEASY(), Options{})
	if *w.Jobs[0] != before {
		t.Fatal("simulation mutated the caller's workload")
	}
}

func TestOutageKillsAndRestarts(t *testing.T) {
	// One 4-proc job running 0..1000; node 0 fails at t=500 for 100 s.
	w := wl(8, [3]int64{0, 4, 1000})
	olog := &outage.Log{Records: []outage.Record{
		{ID: 1, Announced: 500, Start: 500, End: 600, Kind: outage.CPUFailure, Nodes: []int64{0}},
	}}
	res := mustRun(t, w, sched.NewFCFS(), Options{Outages: olog})
	o := outcomeByID(res, 1)
	if o.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", o.Restarts)
	}
	if o.LostWork != 4*500 {
		t.Fatalf("lost work = %d, want 2000", o.LostWork)
	}
	// Restarted at 500 on the remaining 7 nodes (allocation picks
	// different nodes), runs the full 1000 again.
	if !o.Finished() || o.End != 1500 {
		t.Fatalf("outcome: %+v", o)
	}
}

func TestOutageDropPolicy(t *testing.T) {
	w := wl(8, [3]int64{0, 4, 1000})
	olog := &outage.Log{Records: []outage.Record{
		{ID: 1, Announced: 500, Start: 500, End: 600, Kind: outage.CPUFailure, Nodes: []int64{0}},
	}}
	res := mustRun(t, w, sched.NewFCFS(), Options{Outages: olog, DropKilled: true})
	o := outcomeByID(res, 1)
	if !o.Dropped || o.Finished() {
		t.Fatalf("drop policy ignored: %+v", o)
	}
	r := res.Report(8)
	if r.Dropped != 1 {
		t.Fatalf("report dropped = %d", r.Dropped)
	}
}

func TestOutageOnFreeNodeHarmless(t *testing.T) {
	w := wl(8, [3]int64{0, 4, 100})
	olog := &outage.Log{Records: []outage.Record{
		{ID: 1, Announced: 10, Start: 10, End: 50, Kind: outage.CPUFailure, Nodes: []int64{7}},
	}}
	res := mustRun(t, w, sched.NewFCFS(), Options{Outages: olog})
	o := outcomeByID(res, 1)
	if o.Restarts != 0 || o.End != 100 {
		t.Fatalf("unrelated outage affected the job: %+v", o)
	}
}

func TestMaintenanceDrainWithAwareScheduler(t *testing.T) {
	// Maintenance over the whole machine at t=100..200, announced at 0.
	// easy+win drains: a 150-second job submitted at t=0 must wait until
	// after the outage rather than start and be killed.
	olog := &outage.Log{Records: []outage.Record{
		{ID: 1, Announced: 0, Start: 100, End: 200, Kind: outage.Maintenance,
			Nodes: []int64{0, 1, 2, 3, 4, 5, 6, 7}},
	}}
	w := wl(8, [3]int64{0, 4, 150})
	aware := mustRun(t, w, sched.NewEASYWindows(), Options{Outages: olog})
	oa := outcomeByID(aware, 1)
	if oa.Restarts != 0 {
		t.Fatalf("aware scheduler let the job be killed: %+v", oa)
	}
	if oa.Start < 200 {
		t.Fatalf("aware scheduler started into the outage at %d", oa.Start)
	}

	naive := mustRun(t, w, sched.NewEASY(), Options{Outages: olog})
	on := outcomeByID(naive, 1)
	if on.Restarts == 0 {
		t.Fatalf("naive scheduler should have lost work: %+v", on)
	}
	if on.LostWork == 0 {
		t.Fatal("naive run must record lost work")
	}
}

func TestFeedbackClosedLoop(t *testing.T) {
	// Job 2 depends on job 1 with 50 s think time. Under feedback its
	// submit follows job 1's completion, not the recorded submit.
	w := wl(8, [3]int64{0, 8, 100}, [3]int64{10, 8, 100})
	w.Jobs[1].PrecedingJob = 1
	w.Jobs[1].ThinkTime = 50

	open := mustRun(t, w, sched.NewFCFS(), Options{})
	if outcomeByID(open, 2).Submit != 10 {
		t.Fatal("open loop must use recorded submit")
	}

	closed := mustRun(t, w, sched.NewFCFS(), Options{Feedback: true})
	o2 := outcomeByID(closed, 2)
	if o2.Submit != 150 {
		t.Fatalf("closed loop submit = %d, want 150 (end 100 + think 50)", o2.Submit)
	}
	if o2.Wait() != 0 {
		t.Fatalf("wait measured from effective submit: %d", o2.Wait())
	}
}

func TestFeedbackChainNeverSubmitted(t *testing.T) {
	// Dependent of a job that never finishes within the horizon.
	w := wl(8, [3]int64{0, 8, 1000}, [3]int64{10, 8, 100})
	w.Jobs[1].PrecedingJob = 1
	w.Jobs[1].ThinkTime = 0
	res := mustRun(t, w, sched.NewFCFS(), Options{Feedback: true, Horizon: 500})
	if res.NeverSubmitted != 1 {
		t.Fatalf("NeverSubmitted = %d", res.NeverSubmitted)
	}
}

func TestReservationGrantAndRelease(t *testing.T) {
	// Empty machine: a reservation for 6 of 8 procs over [100, 200).
	w := wl(8, [3]int64{150, 4, 10}) // 4-proc job at t=150 cannot start (only 2 free)
	res := mustRun(t, w, sched.NewFCFS(), Options{
		Reservations: []sched.Reservation{{ID: 1, Procs: 6, Start: 100, End: 200}},
	})
	if len(res.Reservations) != 1 || !res.Reservations[0].Granted {
		t.Fatalf("reservation outcome: %+v", res.Reservations)
	}
	o := outcomeByID(res, 1)
	if o.Start != 200 {
		t.Fatalf("job should start when the reservation releases: %+v", o)
	}
}

func TestReservationDeniedWhenBusy(t *testing.T) {
	// FCFS (reservation-oblivious) fills the machine; the reservation
	// at t=100 cannot be granted.
	w := wl(8, [3]int64{0, 8, 1000})
	res := mustRun(t, w, sched.NewFCFS(), Options{
		Reservations: []sched.Reservation{{ID: 1, Procs: 4, Start: 100, End: 200}},
	})
	if res.Reservations[0].Granted {
		t.Fatal("reservation should fail on a full machine")
	}
}

func TestReservationAwareSchedulerHonors(t *testing.T) {
	// easy+win sees the reservation window and avoids starting a job
	// that would collide with it.
	w := wl(8, [3]int64{0, 8, 500}) // would overlap [100,200) reservation
	res := mustRun(t, w, sched.NewEASYWindows(), Options{
		Reservations: []sched.Reservation{{ID: 1, Procs: 8, Start: 100, End: 200}},
	})
	if !res.Reservations[0].Granted {
		t.Fatal("aware scheduler must leave room for the reservation")
	}
	o := outcomeByID(res, 1)
	if o.Start < 200 {
		t.Fatalf("job started at %d into the reservation", o.Start)
	}
}

func TestGangSimulation(t *testing.T) {
	// Two 8-proc jobs of 100 s work on an 8-proc machine under gang
	// scheduling with 2 slots: both run at half speed, both finish at
	// ~200 (vs 100 and 200 under FCFS).
	w := wl(8, [3]int64{0, 8, 100}, [3]int64{0, 8, 100})
	res := mustRun(t, w, sched.NewGang(2), Options{})
	o1, o2 := outcomeByID(res, 1), outcomeByID(res, 2)
	if !o1.Finished() || !o2.Finished() {
		t.Fatalf("gang jobs unfinished: %+v %+v", o1, o2)
	}
	if o1.End != 200 || o2.End != 200 {
		t.Fatalf("gang ends: %d %d, want 200 200", o1.End, o2.End)
	}
}

func TestGangFinishSpeedsUpRemaining(t *testing.T) {
	// Job 1: 100 s work; job 2: 300 s work. Shared until job 1 is done.
	// Phase 1: both at rate 1/2 until job1 completes at t=200 (100 work).
	// Job 2 then has 300-100=200 left at full rate: ends at 400.
	w := wl(8, [3]int64{0, 8, 100}, [3]int64{0, 8, 300})
	res := mustRun(t, w, sched.NewGang(2), Options{})
	o1, o2 := outcomeByID(res, 1), outcomeByID(res, 2)
	if o1.End != 200 {
		t.Fatalf("job 1 end = %d, want 200", o1.End)
	}
	if o2.End != 400 {
		t.Fatalf("job 2 end = %d, want 400", o2.End)
	}
}

func TestMemoryAwareScheduling(t *testing.T) {
	// 4 nodes with 1 GB, 4 with 4 GB. A job needing 2 GB/proc on 4
	// procs must wait for the big nodes even though small ones are free.
	mems := []int64{1 << 20, 1 << 20, 1 << 20, 1 << 20, 4 << 20, 4 << 20, 4 << 20, 4 << 20}
	w := &core.Workload{Name: "mem", MaxNodes: 8, Jobs: []*core.Job{
		{ID: 1, Submit: 0, Size: 4, Runtime: 100, User: 1, ReqMemPerProc: 2 << 20},
		{ID: 2, Submit: 0, Size: 4, Runtime: 100, User: 1, ReqMemPerProc: 2 << 20},
	}}
	res := mustRun(t, w, sched.NewFirstFit(), Options{NodeMem: mems, MemAware: true})
	o1, o2 := outcomeByID(res, 1), outcomeByID(res, 2)
	if o1.Start != 0 {
		t.Fatalf("job 1 should take the 4 big nodes: %+v", o1)
	}
	if o2.Start != 100 {
		t.Fatalf("job 2 must wait for big nodes: %+v", o2)
	}
}

func TestHorizonTruncation(t *testing.T) {
	w := wl(8, [3]int64{0, 8, 100}, [3]int64{0, 8, 100})
	res := mustRun(t, w, sched.NewFCFS(), Options{Horizon: 150})
	r := res.Report(8)
	if r.Finished != 1 || r.Unfinished != 1 {
		t.Fatalf("horizon truncation wrong: %+v", r)
	}
}

func TestInvalidWorkloadRejected(t *testing.T) {
	w := wl(8, [3]int64{0, 16, 100}) // size > machine
	if _, err := Run(w, sched.NewFCFS(), Options{}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestEstimatesVisibleToScheduler(t *testing.T) {
	// With terrible estimates EASY backfills less: compare perfect vs
	// estimate-driven shadow behaviour end-to-end.
	rng := stats.NewRNG(1)
	w := &core.Workload{Name: "est", MaxNodes: 16}
	id := int64(1)
	add := func(submit int64, size int, rt, est int64) {
		w.Jobs = append(w.Jobs, &core.Job{ID: id, Submit: submit, Size: size,
			Runtime: rt, Estimate: est, User: 1 + id%4})
		id++
	}
	_ = rng
	add(0, 12, 1000, 1000) // running: 4 procs left free
	add(1, 14, 100, 100)   // head: blocked; shadow at 1000, extra = 16-14 = 2
	add(2, 4, 400, 3000)   // wildly overestimated backfill candidate (4 > extra)
	resTrue := mustRun(t, w, sched.NewEASY(), Options{PerfectEstimates: true})
	resEst := mustRun(t, w, sched.NewEASY(), Options{})
	// With perfect estimates the 400s job ends at 402 < 1000 (shadow), so
	// it backfills. With the 3000s estimate it appears to delay the head
	// and does not fit beside it (extra is only 2 procs).
	if outcomeByID(resTrue, 3).Start != 2 {
		t.Fatalf("perfect estimates: %+v", outcomeByID(resTrue, 3))
	}
	if outcomeByID(resEst, 3).Start == 2 {
		t.Fatal("overestimate should block the backfill")
	}
}

func TestUtilizationMatchesLoadAtSaturationFreeRegime(t *testing.T) {
	// At moderate load with EASY, utilization over the makespan should
	// be in the same ballpark as the offered load.
	m := lublin.Default()
	w := m.Generate(model.Config{MaxNodes: 64, Jobs: 1500, Seed: 7, Load: 0.6})
	res := mustRun(t, w, sched.NewEASY(), Options{PerfectEstimates: true})
	r := res.Report(64)
	if r.Utilization < 0.4 || r.Utilization > 0.8 {
		t.Fatalf("utilization %v far from offered load 0.6", r.Utilization)
	}
}
