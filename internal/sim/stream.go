package sim

// RunStream is the pull-based counterpart of Run: instead of cloning a
// materialized workload and scheduling every arrival event up front, it
// pulls jobs from a core.JobStream one at a time, keeping exactly one
// arrival in flight. With Options.DiscardOutcomes (so observers are the
// only consumers) and outcome pruning, a full trace replay holds O(1)
// state per job: memory is bounded by the number of jobs simultaneously
// queued or running, never by trace length.

import (
	"fmt"
	"sort"

	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/sched"
)

// RunStream simulates the jobs pulled from js under scheduler s on a
// machine of maxNodes nodes. The stream must yield jobs in
// non-decreasing submit order with IDs sequential from 1 (the contract
// core.JobStream documents and trace.JobReader guarantees); violations
// abort the run with an error.
//
// Feedback replay is not supported: a closed loop needs every dependent
// job in hand when its predecessor terminates, which is exactly what a
// pull-based arrival stream does not have. Materialize the workload and
// use Run for feedback studies.
//
//schedlint:hotpath entry point: streaming replay; taints des/sched/cluster/metrics/swf/trace cross-package
func RunStream(name string, maxNodes int, js core.JobStream, s sched.Scheduler, opts Options) (*Result, error) {
	if opts.Feedback {
		return nil, fmt.Errorf("sim: streaming replay does not support feedback (closed-loop) mode; use Run") //schedlint:allow allocfree setup error path: rejects the spec before any event fires
	}

	engine := des.NewEngine(2*len(opts.Reservations) + 256)
	sm, err := NewInstance(engine, name, maxNodes, s, opts)
	if err != nil {
		return nil, err
	}
	sm.pruneFinal = opts.DiscardOutcomes

	// The arrival pump: each arrival event submits its job, then keeps
	// pulling and submitting while the next job is due at the same
	// instant (file order preserved), and re-arms for the next distinct
	// submit time — so the engine never holds more than one pending
	// arrival, and the event count per arrival instant matches Run's
	// replay cursor exactly (the streaming≡batch tests compare counts).
	var (
		pump       func(j *core.Job)
		pumpErr    error
		pulled     int
		prevSubmit int64
		pending    *core.Job // scheduled but not yet submitted
	)
	pull := func() (*core.Job, error) {
		j, err := js.Next()
		if err != nil || j == nil {
			return nil, err
		}
		pulled++
		if j.ID != int64(pulled) {
			return nil, fmt.Errorf("sim: stream job %d arrived in position %d; IDs must be sequential from 1", j.ID, pulled) //schedlint:allow allocfree error path: a malformed stream aborts the replay
		}
		if j.Submit < prevSubmit {
			return nil, fmt.Errorf("sim: stream job %d submitted at %d, before predecessor's %d", j.ID, j.Submit, prevSubmit) //schedlint:allow allocfree error path: a malformed stream aborts the replay
		}
		if j.Size < 1 || j.Size > maxNodes {
			return nil, fmt.Errorf("sim: stream job %d: size %d outside machine of %d nodes", j.ID, j.Size, maxNodes) //schedlint:allow allocfree error path: a malformed stream aborts the replay
		}
		if j.Runtime < 0 {
			return nil, fmt.Errorf("sim: stream job %d: negative runtime %d", j.ID, j.Runtime) //schedlint:allow allocfree error path: a malformed stream aborts the replay
		}
		prevSubmit = j.Submit
		return j, nil
	}
	pump = func(j *core.Job) {
		pending = j
		engine.At(j.Submit, des.PriorityTraceArrival, func() {
			now := engine.Now()
			for {
				pending = nil
				sm.submit(j, now)
				next, err := pull()
				if err != nil {
					pumpErr = err
					return
				}
				if next == nil {
					return
				}
				if next.Submit != now {
					pump(next)
					return
				}
				j = next
				pending = j
			}
		})
	}
	first, err := pull()
	if err != nil {
		return nil, err
	}
	if first != nil {
		pump(first)
	}

	if opts.Outages != nil {
		scheduleOutages(engine, sm, opts.Outages)
	}
	for _, r := range opts.Reservations {
		r := r
		announce := r.Announced
		if announce < 0 {
			announce = 0
		}
		if announce > r.Start {
			announce = r.Start
		}
		engine.At(announce, des.PriorityOutage, func() { sm.Reserve(r) })
	}
	scheduleSampling(engine, sm, opts)

	if opts.Horizon > 0 {
		engine.RunUntil(opts.Horizon)
	} else {
		engine.Run()
	}
	if pumpErr != nil {
		return nil, pumpErr
	}

	return collectStream(sm, name, engine, js, pending)
}

// collectStream assembles the streaming result. Residual outcomes (jobs
// still queued or running when the run ended) are flushed to observers
// in job-ID order, matching collect; under pruning they are the only
// entries left in the outcome map. Jobs the horizon cut off before
// their arrival — the scheduled-but-unfired one, plus the unpulled
// stream tail — count as NeverSubmitted, as they do in Run.
func collectStream(sm *Instance, name string, engine *des.Engine, js core.JobStream, pending *core.Job) (*Result, error) {
	res := &Result{Scheduler: sm.schedule.Name(), Workload: name, Events: engine.Processed}
	ids := make([]int64, 0, len(sm.outcomes)) //schedlint:allow allocfree once per replay, sized after the event loop drains
	for id := range sm.outcomes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		oo := *sm.outcomes[id]
		if oo.End < 0 {
			if rs, running := sm.running[id]; running {
				oo.Start = rs.start
			}
			if !oo.Dropped {
				sm.emit(oo)
			}
		}
		if !sm.opts.DiscardOutcomes {
			res.Outcomes = append(res.Outcomes, oo)
		}
	}
	if pending != nil {
		res.NeverSubmitted++
		for {
			j, err := js.Next()
			if err != nil {
				return nil, err
			}
			if j == nil {
				break
			}
			res.NeverSubmitted++
		}
	}
	res.Reservations = sm.resvResults
	return res, nil
}
