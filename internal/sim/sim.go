// Package sim drives machine-scheduler simulations: it replays a
// workload (open loop, or closed loop honouring the standard format's
// preceding-job/think-time feedback fields) against a scheduler on a
// simulated machine, optionally injecting the outage log of Section 2.2
// (killing jobs on failed nodes and restarting them, exactly the IBM SP
// behaviour the paper describes) and advance-reservation streams for
// the metacomputing experiments.
//
// The simulator owns time (internal/des), resources
// (internal/cluster), and job lifecycles; the scheduler plugs in via
// the internal/sched interfaces. All runs are deterministic. The
// single-machine entry point is Run; multi-machine grids assemble
// Instances directly (see internal/meta).
package sim

import (
	"fmt"

	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/metrics"
	"parsched/internal/outage"
	"parsched/internal/sched"
)

// MaxRestarts caps outage-driven restarts per job before the simulator
// drops the job as permanently killed.
const MaxRestarts = 100

// reservationOwner offsets reservation IDs into their own owner space
// so they never collide with job IDs on the cluster.
const reservationOwner int64 = 1 << 40

// Options configure a run.
type Options struct {
	// Feedback replays preceding-job dependencies as a closed loop: a
	// dependent job is submitted ThinkTime seconds after its
	// predecessor terminates, rather than at its recorded submit time.
	Feedback bool
	// Outages injects the outage log (same time base as the workload).
	Outages *outage.Log
	// Reservations injects advance-reservation requests.
	Reservations []sched.Reservation
	// NodeMem configures per-node memory (KB); nil means uniform
	// effectively-infinite memory. Length must equal the workload's
	// MaxNodes when set.
	NodeMem []int64
	// MemAware makes allocation honour job ReqMemPerProc.
	MemAware bool
	// PerfectEstimates makes the scheduler see actual runtimes instead
	// of user estimates.
	PerfectEstimates bool
	// DropKilled abandons jobs killed by outages instead of restarting
	// them.
	DropKilled bool
	// Horizon stops the simulation at this time (0 = run to drain).
	Horizon int64
	// Observers receive every job outcome exactly once: final outcomes
	// (completion or permanent drop) at the instant they happen, and
	// residual outcomes (jobs still queued or running when the run
	// ends) during collection. A metrics.Collector is the canonical
	// observer; attaching one makes a full Report available without
	// retaining the outcome slice.
	Observers []Observer
	// SampleEvery, when > 0, records a time-series snapshot
	// (utilization, queue length, backlog) every SampleEvery seconds
	// to each observer that implements SampleObserver.
	SampleEvery int64
	// DiscardOutcomes skips retaining per-job outcomes on the Result —
	// observers become the only consumers, which keeps memory O(1) on
	// million-job replays. Result.Report is meaningless in this mode;
	// use an attached Collector's Report instead.
	DiscardOutcomes bool
}

// Observer receives job outcomes as the simulation produces them —
// the streaming alternative to reading Result.Outcomes after the run.
type Observer interface {
	Observe(o metrics.Outcome)
}

// SampleObserver is implemented by observers that also want the
// machine-level time series (metrics.Collector is one).
type SampleObserver interface {
	ObserveSample(s metrics.Sample)
}

// ReservationOutcome records how an advance reservation fared.
type ReservationOutcome struct {
	Reservation sched.Reservation
	// Granted reports whether the full processor count was allocated
	// at the reserved start time.
	Granted bool
}

// Result is the output of a run.
type Result struct {
	Scheduler string
	Workload  string
	Outcomes  []metrics.Outcome
	// NeverSubmitted counts feedback jobs whose predecessor never
	// terminated inside the horizon.
	NeverSubmitted int
	Reservations   []ReservationOutcome
	// Events is the DES event count (a cost indicator for benchmarks).
	Events uint64
}

// Report computes the aggregate metrics for the run from the retained
// outcomes. Under Options.DiscardOutcomes there is nothing retained —
// attach a metrics.Collector observer and use its Report instead.
func (r *Result) Report(procs int) metrics.Report {
	return metrics.Compute(r.Scheduler, r.Workload, r.Outcomes, procs)
}

// state of one running job.
type runState struct {
	job    *core.Job
	size   int
	start  int64
	expEnd int64
	shared bool
	// remaining is work left in dedicated-seconds; meaningful for
	// shared jobs whose rate varies.
	remaining  float64
	rate       float64
	lastUpdate int64
	finish     des.Handle
	// fire is the finish callback bound to this runState, created once
	// and kept across pool recycling: rescheduling a finish (every gang
	// rate change does one) then costs no closure allocation. It reads
	// the job identity at fire time, and cancelled events never fire,
	// so pool reuse cannot misdeliver a finish.
	fire func()
}

// Run simulates workload w under scheduler s. The workload is cloned;
// the caller's copy is never mutated (schedulers may mold jobs).
func Run(w *core.Workload, s sched.Scheduler, opts Options) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid workload: %w", err)
	}
	w = w.Clone()

	// Arrivals are delivered by one self-rearming cursor walking the
	// submit-sorted job list, so the peak pending-event population is
	// one finish event per running job plus the injected streams — not
	// one event per trace job; pre-sizing the engine for that makes the
	// run allocation-free in steady state.
	engine := des.NewEngine(w.MaxNodes + 2*len(opts.Reservations) + 64)
	sm, err := NewInstance(engine, w.Name, w.MaxNodes, s, opts)
	if err != nil {
		return nil, err
	}

	// Arrival events: one cursor event replays the trace in submit
	// order (feedback jobs wait for their predecessor instead),
	// delivering every same-instant arrival in one firing. The cursor's
	// PriorityTraceArrival class keeps those batches ordered before
	// same-instant feedback resubmissions, exactly as the old
	// event-per-job materialization did by insertion sequence — and one
	// live closure replaces len(Jobs) of them.
	if opts.Feedback {
		for _, j := range w.Jobs {
			if j.PrecedingJob > 0 {
				sm.AwaitPredecessor(j)
			}
		}
	}
	next := 0
	skipAwaited := func() {
		for next < len(w.Jobs) && opts.Feedback && w.Jobs[next].PrecedingJob > 0 {
			next++
		}
	}
	var cursor func()
	cursor = func() {
		now := engine.Now()
		for {
			j := w.Jobs[next]
			next++
			sm.submit(j, now)
			skipAwaited()
			if next >= len(w.Jobs) || w.Jobs[next].Submit != now {
				break
			}
		}
		if next < len(w.Jobs) {
			engine.At(w.Jobs[next].Submit, des.PriorityTraceArrival, cursor)
		}
	}
	skipAwaited()
	if next < len(w.Jobs) {
		engine.At(w.Jobs[next].Submit, des.PriorityTraceArrival, cursor)
	}

	// Outage events: announcements make windows visible; node
	// transitions batched by timestamp change the machine.
	if opts.Outages != nil {
		scheduleOutages(engine, sm, opts.Outages)
	}

	// Reservation events: become visible at announcement, claim
	// processors at start, release at end.
	for _, r := range opts.Reservations {
		r := r
		announce := r.Announced
		if announce < 0 {
			announce = 0
		}
		if announce > r.Start {
			announce = r.Start
		}
		engine.At(announce, des.PriorityOutage, func() { sm.Reserve(r) })
	}

	scheduleSampling(engine, sm, opts)

	if opts.Horizon > 0 {
		engine.RunUntil(opts.Horizon)
	} else {
		engine.Run()
	}

	return collect(sm, w, engine), nil
}

// scheduleSampling installs the recurring instrumentation event that
// feeds SampleObservers. The tick reschedules itself only while live
// events remain, so sampling covers the whole run without keeping the
// engine alive afterwards.
func scheduleSampling(engine *des.Engine, sm *Instance, opts Options) {
	if opts.SampleEvery <= 0 {
		return
	}
	var samplers []SampleObserver
	for _, ob := range opts.Observers {
		if so, ok := ob.(SampleObserver); ok {
			samplers = append(samplers, so) //schedlint:allow allocfree setup: observer fan-out assembled once per run
		}
	}
	if len(samplers) == 0 {
		return
	}
	interval := opts.SampleEvery
	var tick func()
	tick = func() {
		sm.recordSample(samplers)
		if engine.Live() {
			engine.After(interval, des.PrioritySample, tick)
		}
	}
	engine.At(0, des.PrioritySample, tick)
}

// scheduleOutages wires an outage log into an instance: announcement
// events (scheduler visibility) plus batched node up/down transitions.
func scheduleOutages(engine *des.Engine, sm *Instance, log *outage.Log) {
	for _, rec := range log.Records {
		rec := rec
		announced := rec.Announced
		if announced < 0 {
			announced = 0
		}
		engine.At(announced, des.PriorityOutage, func() {
			sm.announceOutage(sched.Window{
				Start: rec.Start, End: rec.End, Procs: len(rec.Nodes),
			}, rec.Announced)
		})
	}
	evs := outage.Events(log)
	for i := 0; i < len(evs); {
		k := i
		for k < len(evs) && evs[k].Time == evs[i].Time {
			k++
		}
		var downs, ups []int
		for _, ev := range evs[i:k] {
			if ev.Down {
				downs = append(downs, int(ev.Node)) //schedlint:allow allocfree setup: outage batches wired once per run, before the event loop
			} else {
				ups = append(ups, int(ev.Node)) //schedlint:allow allocfree setup: outage batches wired once per run, before the event loop
			}
		}
		if t := evs[i].Time; t >= 0 {
			engine.At(t, des.PriorityOutage, func() { sm.applyNodeEvents(downs, ups) })
		}
		i = k
	}
}

// collect assembles the result after the event loop drains. Jobs that
// never reached a final termination (still queued or running at the
// horizon) are flushed to the observers here — final outcomes were
// already delivered at event time — so observers see every submitted
// job exactly once.
func collect(sm *Instance, w *core.Workload, engine *des.Engine) *Result {
	res := &Result{Scheduler: sm.schedule.Name(), Workload: w.Name, Events: engine.Processed}
	if !sm.opts.DiscardOutcomes {
		res.Outcomes = make([]metrics.Outcome, 0, len(w.Jobs))
	}
	for _, j := range w.Jobs {
		o, ok := sm.outcomes[j.ID]
		if !ok {
			// Feedback job whose predecessor never terminated.
			res.NeverSubmitted++
			continue
		}
		oo := *o
		if oo.End < 0 {
			// Still queued or running when the simulation ended.
			if rs, running := sm.running[j.ID]; running {
				oo.Start = rs.start
			}
			if !oo.Dropped {
				sm.emit(oo)
			}
		}
		if !sm.opts.DiscardOutcomes {
			res.Outcomes = append(res.Outcomes, oo)
		}
	}
	res.Reservations = sm.resvResults
	return res
}
