package sim

import (
	"math"
	"reflect"
	"testing"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/sched"
)

func observerWorkload(t *testing.T, jobs int, load float64) *core.Workload {
	t.Helper()
	return lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: jobs, Seed: 7, Load: load, EstimateFactor: 2,
	})
}

// TestObserverStreamsEveryOutcome: a collector attached as an observer
// sees exactly the outcome population the batch path retains, so its
// streaming Report matches the post-hoc one (order-insensitive fields
// exactly; the order-folded geometric mean to floating-point noise).
func TestObserverStreamsEveryOutcome(t *testing.T) {
	w := observerWorkload(t, 400, 0.8)
	col := metrics.NewCollector(metrics.CollectorOptions{
		Scheduler: "easy", Workload: w.Name, Procs: w.MaxNodes,
	})
	var streamed []metrics.Outcome
	tap := observerFunc(func(o metrics.Outcome) { streamed = append(streamed, o) })

	s, err := sched.New("easy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, s, Options{Observers: []Observer{col, tap}})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Outcomes) {
		t.Fatalf("observer saw %d outcomes, result retained %d", len(streamed), len(res.Outcomes))
	}
	batch := res.Report(w.MaxNodes)
	stream := col.Report()
	if math.Abs(stream.GeoBSLD-batch.GeoBSLD) > 1e-9*batch.GeoBSLD {
		t.Fatalf("geo BSLD: stream %v vs batch %v", stream.GeoBSLD, batch.GeoBSLD)
	}
	stream.GeoBSLD, batch.GeoBSLD = 0, 0
	if !reflect.DeepEqual(stream, batch) {
		t.Fatalf("streaming report diverges from batch:\n stream %+v\n batch  %+v", stream, batch)
	}
}

// TestObserverSeesResidualOutcomes: with a tight horizon, jobs cut off
// mid-queue or mid-run are flushed to observers at collection, so the
// streamed population still matches the retained one.
func TestObserverSeesResidualOutcomes(t *testing.T) {
	w := observerWorkload(t, 300, 1.2)
	horizon := w.Jobs[len(w.Jobs)/2].Submit // stop halfway through arrivals
	col := metrics.NewCollector(metrics.CollectorOptions{Procs: w.MaxNodes})
	s, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, s, Options{Horizon: horizon, Observers: []Observer{col}})
	if err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	if r.Jobs != len(res.Outcomes) {
		t.Fatalf("collector observed %d jobs, result has %d", r.Jobs, len(res.Outcomes))
	}
	if r.Unfinished == 0 {
		t.Fatal("horizon cut should leave unfinished jobs for the observer to see")
	}
	batch := res.Report(w.MaxNodes)
	if r.Finished != batch.Finished || r.Unfinished != batch.Unfinished {
		t.Fatalf("population mismatch: stream %+v vs batch %+v", r, batch)
	}
}

// TestDiscardOutcomes: the O(1)-memory pipeline — no outcome slice on
// the Result, full Report from the collector alone.
func TestDiscardOutcomes(t *testing.T) {
	w := observerWorkload(t, 300, 0.7)
	s1, err := sched.New("easy")
	if err != nil {
		t.Fatal(err)
	}
	retained, err := Run(w, s1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	col := metrics.NewCollector(metrics.CollectorOptions{
		Scheduler: "easy", Workload: w.Name, Procs: w.MaxNodes,
	})
	s2, err := sched.New("easy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, s2, Options{DiscardOutcomes: true, Observers: []Observer{col}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != nil {
		t.Fatalf("DiscardOutcomes retained %d outcomes", len(res.Outcomes))
	}
	want := retained.Report(w.MaxNodes)
	got := col.Report()
	if got.Finished != want.Finished || got.Wait.Mean != want.Wait.Mean || got.Utilization != want.Utilization {
		t.Fatalf("collector report diverges without retention:\n got  %+v\n want %+v", got, want)
	}
}

// TestTimeSeriesSampling: the engine-driven sampler covers the run at
// the configured cadence with monotone timestamps and sane values.
func TestTimeSeriesSampling(t *testing.T) {
	w := observerWorkload(t, 300, 0.9)
	col := metrics.NewCollector(metrics.CollectorOptions{Procs: w.MaxNodes})
	s, err := sched.New("easy")
	if err != nil {
		t.Fatal(err)
	}
	const every = int64(3600)
	res, err := Run(w, s, Options{Observers: []Observer{col}, SampleEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	ts := col.Series()
	if ts == nil || ts.Interval != every {
		t.Fatalf("series missing or wrong cadence: %+v", ts)
	}
	r := res.Report(w.MaxNodes)
	span := r.Makespan
	if n := int64(len(ts.Samples)); n < span/every {
		t.Fatalf("only %d samples across a %ds run at %ds cadence", n, span, every)
	}
	var sawWork bool
	for i, sp := range ts.Samples {
		if sp.Time != int64(i)*every {
			t.Fatalf("sample %d at t=%d, want %d", i, sp.Time, int64(i)*every)
		}
		if sp.Utilization < 0 || sp.Utilization > 1 {
			t.Fatalf("utilization out of range: %+v", sp)
		}
		if sp.Running > 0 || sp.Queued > 0 {
			sawWork = true
		}
		if sp.Backlog < 0 {
			t.Fatalf("negative backlog: %+v", sp)
		}
	}
	if !sawWork {
		t.Fatal("time series never saw the machine busy")
	}
	// No sampling requested -> no series, and byte-identical outcomes.
	s2, err := sched.New("easy")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(w, s2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outcomes, res.Outcomes) {
		t.Fatal("sampling perturbed the simulation")
	}
}

// observerFunc adapts a func to the Observer interface.
type observerFunc func(metrics.Outcome)

func (f observerFunc) Observe(o metrics.Outcome) { f(o) }
