package sim

// Property test for the resumable-pass reservation ledger: over
// randomized event sequences — submits, normal finishes, early
// finishes (estimate factor > 1), outage kills, visible outage
// windows, and advance reservations — a ledger-resumed run must be
// indistinguishable from a from-scratch run. Not statistically
// similar: byte-equal outcome streams, reservation grants, and
// reports. The ledger's whole contract is that resuming a recorded
// walk replays the exact deterministic decision sequence, so any
// divergence, however small, is a bug.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/stats"
)

// ledgerPair builds the ledger-on and ledger-off variants of one
// scheduler configuration. Fresh values each call: schedulers carry
// per-run state and must never be shared across runs.
type ledgerPair struct {
	name string
	mk   func(disable bool) sched.Scheduler
}

func ledgerPairs() []ledgerPair {
	return []ledgerPair{
		{"cons", func(d bool) sched.Scheduler {
			return &sched.Conservative{DisableLedger: d}
		}},
		{"cons+win", func(d bool) sched.Scheduler {
			return &sched.Conservative{Windows: true, DisableLedger: d}
		}},
		{"easy-deep", func(d bool) sched.Scheduler {
			return &sched.EASY{Reserve: 4, DisableLedger: d}
		}},
		{"easy-deep+win", func(d bool) sched.Scheduler {
			return &sched.EASY{Reserve: 4, Windows: true, DisableLedger: d}
		}},
	}
}

// checkLedgerEquivalence runs one scheduler configuration twice over
// the same inputs — ledger on, ledger off — and fails on the first
// field-level divergence between the runs.
func checkLedgerEquivalence(t *testing.T, name string, mk func(disable bool) sched.Scheduler, wMake func() *core.Workload, opts Options) {
	t.Helper()
	on, err := Run(wMake(), mk(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(wMake(), mk(true), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Outcomes) != len(off.Outcomes) {
		t.Fatalf("%s: ledger-on run produced %d outcomes, from-scratch %d",
			name, len(on.Outcomes), len(off.Outcomes))
	}
	// Element-wise, not keyed by job ID: identical decisions imply the
	// outcome stream is emitted in the identical event order too.
	for i := range on.Outcomes {
		if on.Outcomes[i] != off.Outcomes[i] {
			t.Fatalf("%s: outcome %d diverged:\n  ledger-on:    %+v\n  from-scratch: %+v",
				name, i, on.Outcomes[i], off.Outcomes[i])
		}
	}
	if len(on.Reservations) != len(off.Reservations) {
		t.Fatalf("%s: reservation outcome counts diverged: %d vs %d",
			name, len(on.Reservations), len(off.Reservations))
	}
	for i := range on.Reservations {
		if on.Reservations[i] != off.Reservations[i] {
			t.Fatalf("%s: reservation outcome %d diverged:\n  ledger-on:    %+v\n  from-scratch: %+v",
				name, i, on.Reservations[i], off.Reservations[i])
		}
	}
	ra, rb := on.Report(wMake().MaxNodes), off.Report(wMake().MaxNodes)
	if ra != rb {
		t.Fatalf("%s: reports diverged:\n  ledger-on:    %+v\n  from-scratch: %+v", name, ra, rb)
	}
}

// TestLedgerResumeEquivalenceProperty is the randomized cross-check:
// each quick iteration draws a workload, an outage log, and a
// reservation calendar from the seed and demands decision-identical
// runs for every ledger-capable scheduler configuration.
func TestLedgerResumeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := model.Config{
			MaxNodes: 32,
			Jobs:     120 + rng.Intn(80),
			Seed:     seed,
			Load:     0.7 + rng.Float64()*0.8, // up to 1.5: congested queues resume often
			// > 1 so most finishes land early, invalidating recorded
			// reservations at random offsets before their fall-due times.
			EstimateFactor: 1.2 + rng.Float64(),
		}
		wMake := func() *core.Workload { return lublin.Default().Generate(cfg) }
		span := wMake().Span()

		// Outage windows plus the kills they cause. Moderate density:
		// every window edge invalidates window-set memos, every kill
		// bumps the run epoch mid-pass.
		mtbf := 3600 + rng.Int63n(4*3600)
		log := outage.Generate(outage.GeneratorConfig{
			Nodes: 32, Horizon: span + 7*86400,
			MTBF:         stats.Exponential{Lambda: 1.0 / float64(mtbf)},
			Repair:       stats.Exponential{Lambda: 1.0 / 1200},
			FailureNodes: stats.Constant{C: 2},
		}, seed)

		// A random calendar of advance reservations, some announced at
		// time zero, some mid-run — both claim and release edges land
		// between scheduling passes.
		nResv := 2 + rng.Intn(4)
		resvs := make([]sched.Reservation, 0, nResv)
		for i := 0; i < nResv; i++ {
			start := rng.Int63n(span + 1)
			resvs = append(resvs, sched.Reservation{
				ID:        int64(1000 + i),
				Procs:     4 + rng.Intn(12),
				Start:     start,
				End:       start + 1800 + rng.Int63n(2*3600),
				Announced: start / (1 + rng.Int63n(3)),
			})
		}
		opts := Options{Outages: log, Reservations: resvs}

		for _, p := range ledgerPairs() {
			checkLedgerEquivalence(t, p.name, p.mk, wMake, opts)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
