package outage

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"parsched/internal/stats"
)

func TestRecordRoundTrip(t *testing.T) {
	r := Record{ID: 1, Announced: 100, Start: 200, End: 300, Kind: Maintenance,
		Nodes: []int64{0, 1, 5}}
	parsed, err := ParseRecord(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ID != 1 || parsed.Kind != Maintenance || len(parsed.Nodes) != 3 {
		t.Fatalf("round trip lost data: %+v", parsed)
	}
	if parsed.Nodes[2] != 5 {
		t.Fatalf("nodes wrong: %v", parsed.Nodes)
	}
}

func TestParseRecordErrors(t *testing.T) {
	if _, err := ParseRecord("1 2 3"); err == nil {
		t.Fatal("short line should fail")
	}
	if _, err := ParseRecord("1 0 0 10 1 2 7"); err == nil {
		t.Fatal("node count mismatch should fail")
	}
	if _, err := ParseRecord("1 0 0 10 1 one 7"); err == nil {
		t.Fatal("non-integer should fail")
	}
}

func TestLogReadWrite(t *testing.T) {
	log := &Log{
		Comments: []string{"test log"},
		Records: []Record{
			{ID: 1, Announced: 0, Start: 0, End: 50, Kind: CPUFailure, Nodes: []int64{3}},
			{ID: 2, Announced: 60, Start: 100, End: 200, Kind: Maintenance, Nodes: []int64{0, 1}},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 2 || len(back.Comments) != 1 {
		t.Fatalf("round trip wrong: %+v", back)
	}
	if back.Records[1].Kind != Maintenance || back.Records[1].LeadTime() != 40 {
		t.Fatalf("record 2 wrong: %+v", back.Records[1])
	}
}

func TestReadBadLine(t *testing.T) {
	if _, err := Read(strings.NewReader("nonsense\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestValidateClean(t *testing.T) {
	log := &Log{Records: []Record{
		{ID: 1, Announced: 0, Start: 0, End: 10, Kind: CPUFailure, Nodes: []int64{1}},
		{ID: 2, Announced: 5, Start: 20, End: 30, Kind: Maintenance, Nodes: []int64{0, 1}},
	}}
	if errs := Validate(log, 4); len(errs) != 0 {
		t.Fatalf("clean log flagged: %v", errs)
	}
}

func TestValidateCatches(t *testing.T) {
	cases := []struct {
		name string
		log  *Log
	}{
		{"bad-id", &Log{Records: []Record{{ID: 7, Start: 0, End: 1, Kind: CPUFailure, Nodes: []int64{0}}}}},
		{"end-before-start", &Log{Records: []Record{{ID: 1, Start: 10, End: 5, Announced: 10, Kind: CPUFailure, Nodes: []int64{0}}}}},
		{"announce-after-start", &Log{Records: []Record{{ID: 1, Announced: 20, Start: 10, End: 30, Kind: Maintenance, Nodes: []int64{0}}}}},
		{"no-nodes", &Log{Records: []Record{{ID: 1, Start: 0, End: 1, Kind: CPUFailure}}}},
		{"node-out-of-range", &Log{Records: []Record{{ID: 1, Start: 0, End: 1, Kind: CPUFailure, Nodes: []int64{99}}}}},
		{"dup-node", &Log{Records: []Record{{ID: 1, Start: 0, End: 1, Kind: CPUFailure, Nodes: []int64{2, 2}}}}},
		{"failure-preannounced", &Log{Records: []Record{{ID: 1, Announced: 0, Start: 5, End: 6, Kind: CPUFailure, Nodes: []int64{0}}}}},
		{"unsorted", &Log{Records: []Record{
			{ID: 1, Announced: 100, Start: 100, End: 110, Kind: CPUFailure, Nodes: []int64{0}},
			{ID: 2, Announced: 5, Start: 5, End: 10, Kind: CPUFailure, Nodes: []int64{1}},
		}}},
	}
	for _, c := range cases {
		if errs := Validate(c.log, 8); len(errs) == 0 {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestGenerateFailures(t *testing.T) {
	cfg := GeneratorConfig{
		Nodes:   64,
		Horizon: 30 * 86400,
		MTBF:    stats.Exponential{Lambda: 1.0 / 86400}, // ~1/day
		Repair:  stats.Constant{C: 3600},
	}
	log := Generate(cfg, 1)
	if len(log.Records) < 10 {
		t.Fatalf("expected ~30 failures, got %d", len(log.Records))
	}
	if errs := Validate(log, 64); len(errs) != 0 {
		t.Fatalf("generated log invalid: %v", errs)
	}
	for _, r := range log.Records {
		if r.Kind.Planned() {
			t.Fatal("failure-only config produced planned outage")
		}
		if r.Announced != r.Start {
			t.Fatal("failures must be announced at start")
		}
	}
}

func TestGenerateMaintenance(t *testing.T) {
	cfg := GeneratorConfig{
		Nodes:             16,
		Horizon:           14 * 86400,
		MaintenanceEvery:  7 * 86400,
		MaintenanceLength: 4 * 3600,
		MaintenanceLead:   86400,
	}
	log := Generate(cfg, 2)
	if len(log.Records) != 1 {
		t.Fatalf("expected 1 maintenance window inside horizon, got %d", len(log.Records))
	}
	r := log.Records[0]
	if r.Kind != Maintenance || r.LeadTime() != 86400 || len(r.Nodes) != 16 {
		t.Fatalf("maintenance record wrong: %+v", r)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := GeneratorConfig{
		Nodes: 32, Horizon: 10 * 86400,
		MTBF:   stats.Exponential{Lambda: 1.0 / 43200},
		Repair: stats.LogNormal{Mu: 8, Sigma: 0.5},
	}
	a := Generate(cfg, 7)
	b := Generate(cfg, 7)
	if len(a.Records) != len(b.Records) {
		t.Fatal("same seed, different record count")
	}
	for i := range a.Records {
		if a.Records[i].String() != b.Records[i].String() {
			t.Fatalf("record %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateMultiNodeFailures(t *testing.T) {
	cfg := GeneratorConfig{
		Nodes: 32, Horizon: 20 * 86400,
		MTBF:         stats.Exponential{Lambda: 1.0 / 86400},
		Repair:       stats.Constant{C: 1800},
		FailureNodes: stats.Constant{C: 4},
	}
	log := Generate(cfg, 3)
	for _, r := range log.Records {
		if len(r.Nodes) != 4 {
			t.Fatalf("expected 4-node failures, got %d", len(r.Nodes))
		}
		if r.Kind != NetworkFailure {
			t.Fatalf("multi-node partial failure should be network type, got %v", r.Kind)
		}
	}
}

func TestEventsOrdering(t *testing.T) {
	log := &Log{Records: []Record{
		{ID: 1, Start: 10, End: 20, Kind: CPUFailure, Announced: 10, Nodes: []int64{1}},
		{ID: 2, Start: 20, End: 30, Kind: CPUFailure, Announced: 20, Nodes: []int64{1}},
	}}
	evs := Events(log)
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	// At t=20 the down event of outage 2 must precede the up of outage 1.
	if evs[1].Time != 20 || !evs[1].Down {
		t.Fatalf("tie-breaking wrong: %+v", evs)
	}
}

func TestTimeline(t *testing.T) {
	log := &Log{Records: []Record{
		{ID: 1, Start: 10, End: 20, Kind: CPUFailure, Announced: 10, Nodes: []int64{0, 1}},
		{ID: 2, Start: 15, End: 25, Kind: CPUFailure, Announced: 15, Nodes: []int64{1, 2}},
	}}
	tl := NewTimeline(log, 8)
	if got := tl.AvailableAt(5); got != 8 {
		t.Fatalf("AvailableAt(5) = %d", got)
	}
	if got := tl.AvailableAt(17); got != 5 { // nodes 0,1,2 down
		t.Fatalf("AvailableAt(17) = %d", got)
	}
	if got := tl.AvailableAt(22); got != 6 { // nodes 1,2 down
		t.Fatalf("AvailableAt(22) = %d", got)
	}
	if got := tl.AvailableAt(30); got != 8 {
		t.Fatalf("AvailableAt(30) = %d", got)
	}
}

func TestMachineAvailability(t *testing.T) {
	// One node down for half the horizon out of 2 nodes -> 75%.
	log := &Log{Records: []Record{
		{ID: 1, Start: 0, End: 50, Kind: CPUFailure, Announced: 0, Nodes: []int64{0}},
	}}
	tl := NewTimeline(log, 2)
	if got := tl.MachineAvailability(100); got != 0.75 {
		t.Fatalf("availability = %v, want 0.75", got)
	}
}

func TestMachineAvailabilityOverlap(t *testing.T) {
	// Overlapping outages on the same node must not double count.
	log := &Log{Records: []Record{
		{ID: 1, Start: 0, End: 60, Kind: CPUFailure, Announced: 0, Nodes: []int64{0}},
		{ID: 2, Start: 30, End: 80, Kind: DiskFailure, Announced: 30, Nodes: []int64{0}},
	}}
	tl := NewTimeline(log, 1)
	if got := tl.MachineAvailability(100); got < 0.2-1e-9 || got > 0.2+1e-9 {
		t.Fatalf("availability = %v, want 0.2 (80 of 100 seconds down)", got)
	}
}

func TestAvailabilityProperty(t *testing.T) {
	// Property: availability is always within [0,1] and decreases as
	// outages are added.
	f := func(seed int64) bool {
		cfg := GeneratorConfig{
			Nodes: 16, Horizon: 86400,
			MTBF:   stats.Exponential{Lambda: 1.0 / 7200},
			Repair: stats.Constant{C: 1200},
		}
		log := Generate(cfg, seed)
		tl := NewTimeline(log, 16)
		a := tl.MachineAvailability(86400)
		if a < 0 || a > 1 {
			return false
		}
		// Adding one more whole-machine outage cannot raise availability.
		all := make([]int64, 16)
		for i := range all {
			all[i] = int64(i)
		}
		log2 := &Log{Records: append(append([]Record(nil), log.Records...), Record{
			ID: int64(len(log.Records) + 1), Announced: 1000, Start: 1000,
			End: 5000, Kind: Facility, Nodes: all,
		})}
		tl2 := NewTimeline(log2, 16)
		return tl2.MachineAvailability(86400) <= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if CPUFailure.String() != "cpu-failure" || Type(99).String() == "" {
		t.Fatal("type strings wrong")
	}
	if !Maintenance.Planned() || CPUFailure.Planned() {
		t.Fatal("Planned() wrong")
	}
}
