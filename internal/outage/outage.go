// Package outage implements the standard outage-log format proposed in
// Section 2.2 of Chapin et al. (JSSPP'99) as a companion to the standard
// workload format: "A standard format for outage data should be created
// to compliment the scheduling workload traces. The two datasets should
// be keyed to each other."
//
// An outage file is an ASCII file with one line per outage, integers
// only, semicolon comments, sharing the workload's time base (seconds
// from log start). Each line carries exactly the information the paper
// asks for: when the outage became known to the scheduler, when it
// started and ended, its type, how many nodes were affected, and which
// specific components went down.
//
// The package also provides generators for machine failures (sudden,
// announced only at detection) and human-generated outages (scheduled
// maintenance and dedicated time, announced in advance), plus an
// availability timeline that schedulers consume.
package outage

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parsched/internal/stats"
)

// Type classifies an outage, following the paper's list: CPU failure,
// network failure, facility, plus disk failure and the human-generated
// categories (scheduled maintenance, dedicated time) the text discusses.
type Type int64

// Outage types. Values are part of the file format.
const (
	CPUFailure     Type = 1
	NetworkFailure Type = 2
	DiskFailure    Type = 3
	Facility       Type = 4
	Maintenance    Type = 5 // scheduled maintenance, announced in advance
	Dedicated      Type = 6 // dedicated time, announced in advance
)

func (t Type) String() string {
	switch t {
	case CPUFailure:
		return "cpu-failure"
	case NetworkFailure:
		return "network-failure"
	case DiskFailure:
		return "disk-failure"
	case Facility:
		return "facility"
	case Maintenance:
		return "maintenance"
	case Dedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("Type(%d)", int64(t))
	}
}

// Planned reports whether outages of this type are known in advance
// (human-generated outages) as opposed to detected at start (failures).
func (t Type) Planned() bool { return t == Maintenance || t == Dedicated }

// Record is one outage. Times are seconds on the workload's time base.
type Record struct {
	// ID is a counter starting from 1, in file order.
	ID int64
	// Announced is when the outage information became available to the
	// scheduler. For scheduled outages this precedes Start; for failures
	// it equals Start (the scheduler "suddenly detects that there were
	// fewer nodes available").
	Announced int64
	// Start is when the outage actually occurred.
	Start int64
	// End is when the affected resources were again schedulable.
	End int64
	// Kind is the outage type.
	Kind Type
	// Nodes lists the specific affected components (node numbers,
	// 0-based). Its length is the "number of nodes affected" field.
	Nodes []int64
}

// Duration returns End-Start.
func (r Record) Duration() int64 { return r.End - r.Start }

// LeadTime returns Start-Announced: how much warning the scheduler had.
func (r Record) LeadTime() int64 { return r.Start - r.Announced }

// String renders the record as a standard outage line:
//
//	id announced start end type count node1 ... nodeN
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %d %d %d %d", r.ID, r.Announced, r.Start, r.End, int64(r.Kind), len(r.Nodes))
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, " %d", n)
	}
	return b.String()
}

// ParseRecord parses one outage line.
func ParseRecord(line string) (Record, error) {
	var r Record
	fields := strings.Fields(line)
	if len(fields) < 6 {
		return r, fmt.Errorf("outage: record has %d fields, want at least 6", len(fields))
	}
	vals := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return r, fmt.Errorf("outage: field %d %q: not an integer", i+1, f)
		}
		vals[i] = v
	}
	r.ID, r.Announced, r.Start, r.End, r.Kind = vals[0], vals[1], vals[2], vals[3], Type(vals[4])
	count := vals[5]
	if int64(len(fields)-6) != count {
		return r, fmt.Errorf("outage: declared %d affected nodes but %d listed", count, len(fields)-6)
	}
	r.Nodes = vals[6:]
	return r, nil
}

// Log is a parsed outage file.
type Log struct {
	// Comments preserves header comment lines (without the semicolon).
	Comments []string
	Records  []Record
}

// Read parses an outage file.
func Read(rd io.Reader) (*Log, error) {
	log := &Log{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			log.Comments = append(log.Comments, strings.TrimSpace(strings.TrimPrefix(line, ";")))
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		log.Records = append(log.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}

// Write serializes the log.
func Write(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	for _, c := range log.Comments {
		if _, err := fmt.Fprintf(bw, ";%s\n", c); err != nil {
			return err
		}
	}
	for _, r := range log.Records {
		if _, err := fmt.Fprintln(bw, r.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Validate checks internal consistency: IDs sequential from 1, start
// before end, announcement no later than start, sorted by start time,
// node numbers within [0, maxNodes) when maxNodes > 0.
func Validate(log *Log, maxNodes int64) []error {
	var errs []error
	var prevStart int64
	for i, r := range log.Records {
		if r.ID != int64(i+1) {
			errs = append(errs, fmt.Errorf("record %d: ID %d, want %d", i+1, r.ID, i+1))
		}
		if r.End < r.Start {
			errs = append(errs, fmt.Errorf("record %d: end %d before start %d", i+1, r.End, r.Start))
		}
		if r.Announced > r.Start {
			errs = append(errs, fmt.Errorf("record %d: announced %d after start %d", i+1, r.Announced, r.Start))
		}
		if r.Start < prevStart {
			errs = append(errs, fmt.Errorf("record %d: not sorted by start time", i+1))
		}
		prevStart = r.Start
		if len(r.Nodes) == 0 {
			errs = append(errs, fmt.Errorf("record %d: no affected components listed", i+1))
		}
		seen := map[int64]bool{}
		for _, n := range r.Nodes {
			if maxNodes > 0 && (n < 0 || n >= maxNodes) {
				errs = append(errs, fmt.Errorf("record %d: node %d outside [0,%d)", i+1, n, maxNodes))
			}
			if seen[n] {
				errs = append(errs, fmt.Errorf("record %d: node %d listed twice", i+1, n))
			}
			seen[n] = true
		}
		if !r.Kind.Planned() && r.Announced != r.Start {
			errs = append(errs, fmt.Errorf("record %d: failure outage announced before start", i+1))
		}
	}
	return errs
}

// GeneratorConfig drives synthetic outage generation.
type GeneratorConfig struct {
	Nodes   int64 // cluster size
	Horizon int64 // seconds of log to cover

	// Failures: each node fails independently; inter-failure times on
	// the machine are drawn from MTBF (seconds), repair times from
	// Repair. FailureNodes bounds how many nodes one failure takes down
	// (1 = independent node crash; larger models switch/rack failures).
	MTBF         stats.Dist
	Repair       stats.Dist
	FailureNodes stats.Dist // >= 1; clamped to cluster size

	// Scheduled maintenance: a whole-machine outage every
	// MaintenanceEvery seconds lasting MaintenanceLength seconds,
	// announced MaintenanceLead seconds in advance. Zero disables.
	MaintenanceEvery  int64
	MaintenanceLength int64
	MaintenanceLead   int64
}

// Generate produces an outage log under cfg using the given seed.
// Failures are announced at their start time; maintenance windows are
// announced MaintenanceLead in advance, as the paper's field list
// requires ("was it known in advance, or did the scheduler suddenly
// detect that there were fewer nodes available?").
func Generate(cfg GeneratorConfig, seed int64) *Log {
	rng := stats.NewRNG(seed)
	log := &Log{Comments: []string{
		"parsched synthetic outage log",
		fmt.Sprintf("Nodes: %d", cfg.Nodes),
		fmt.Sprintf("Horizon: %d", cfg.Horizon),
	}}

	var recs []Record

	// Failures.
	if cfg.MTBF != nil && cfg.Repair != nil {
		t := int64(0)
		for {
			gap := int64(cfg.MTBF.Sample(rng))
			if gap < 1 {
				gap = 1
			}
			t += gap
			if t >= cfg.Horizon {
				break
			}
			dur := int64(cfg.Repair.Sample(rng))
			if dur < 1 {
				dur = 1
			}
			n := int64(1)
			if cfg.FailureNodes != nil {
				n = int64(cfg.FailureNodes.Sample(rng))
			}
			if n < 1 {
				n = 1
			}
			if n > cfg.Nodes {
				n = cfg.Nodes
			}
			kind := CPUFailure
			switch {
			case n >= cfg.Nodes:
				kind = Facility
			case n > 1:
				kind = NetworkFailure
			}
			nodes := pickNodes(rng, cfg.Nodes, n)
			end := t + dur
			if end > cfg.Horizon {
				end = cfg.Horizon
			}
			recs = append(recs, Record{
				Announced: t, Start: t, End: end, Kind: kind, Nodes: nodes,
			})
		}
	}

	// Scheduled maintenance.
	if cfg.MaintenanceEvery > 0 && cfg.MaintenanceLength > 0 {
		for t := cfg.MaintenanceEvery; t < cfg.Horizon; t += cfg.MaintenanceEvery {
			ann := t - cfg.MaintenanceLead
			if ann < 0 {
				ann = 0
			}
			all := make([]int64, cfg.Nodes)
			for i := range all {
				all[i] = int64(i)
			}
			end := t + cfg.MaintenanceLength
			if end > cfg.Horizon {
				end = cfg.Horizon
			}
			recs = append(recs, Record{
				Announced: ann, Start: t, End: end, Kind: Maintenance, Nodes: all,
			})
		}
	}

	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	for i := range recs {
		recs[i].ID = int64(i + 1)
	}
	log.Records = recs
	return log
}

// pickNodes selects n distinct node numbers out of total.
func pickNodes(rng *stats.RNG, total, n int64) []int64 {
	perm := rng.Perm(int(total))
	nodes := make([]int64, n)
	for i := int64(0); i < n; i++ {
		nodes[i] = int64(perm[i])
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// Event is a change in node availability derived from an outage log.
type Event struct {
	Time  int64
	Node  int64
	Down  bool  // true = node goes down, false = node restored
	Kind  Type  // outage type responsible
	Known int64 // announcement time of the responsible outage
}

// Events flattens a log into per-node down/up events sorted by time
// (down events before up events at the same instant, so that a
// back-to-back outage keeps the node down).
//
//schedlint:coldpath builds the outage schedule once at setup
func Events(log *Log) []Event {
	var evs []Event
	for _, r := range log.Records {
		for _, n := range r.Nodes {
			evs = append(evs, Event{Time: r.Start, Node: n, Down: true, Kind: r.Kind, Known: r.Announced})
			evs = append(evs, Event{Time: r.End, Node: n, Down: false, Kind: r.Kind, Known: r.Announced})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Down && !evs[j].Down
	})
	return evs
}

// Timeline answers availability queries against an outage log. Nodes may
// appear in overlapping outages; a node is up only when no outage covers
// it.
type Timeline struct {
	nodes   int64
	records []Record
}

// NewTimeline builds a timeline for a cluster of the given size.
func NewTimeline(log *Log, nodes int64) *Timeline {
	return &Timeline{nodes: nodes, records: append([]Record(nil), log.Records...)}
}

// DownAt returns the set of nodes that are down at time t.
func (tl *Timeline) DownAt(t int64) map[int64]bool {
	down := map[int64]bool{}
	for _, r := range tl.records {
		if r.Start <= t && t < r.End {
			for _, n := range r.Nodes {
				down[n] = true
			}
		}
	}
	return down
}

// AvailableAt returns how many nodes are up at time t.
func (tl *Timeline) AvailableAt(t int64) int64 {
	return tl.nodes - int64(len(tl.DownAt(t)))
}

// MachineAvailability integrates node-seconds of availability over
// [0,horizon) and returns the fraction of total node-seconds available.
func (tl *Timeline) MachineAvailability(horizon int64) float64 {
	if horizon <= 0 || tl.nodes == 0 {
		return 1
	}
	var downSeconds int64
	for n := int64(0); n < tl.nodes; n++ {
		downSeconds += tl.nodeDownSeconds(n, horizon)
	}
	total := tl.nodes * horizon
	return 1 - float64(downSeconds)/float64(total)
}

// nodeDownSeconds merges this node's outage intervals over [0,horizon).
func (tl *Timeline) nodeDownSeconds(node, horizon int64) int64 {
	type iv struct{ s, e int64 }
	var ivs []iv
	for _, r := range tl.records {
		for _, n := range r.Nodes {
			if n == node {
				s, e := r.Start, r.End
				if s < 0 {
					s = 0
				}
				if e > horizon {
					e = horizon
				}
				if e > s {
					ivs = append(ivs, iv{s, e})
				}
			}
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var total, end int64
	end = -1
	for _, v := range ivs {
		if v.s > end {
			total += v.e - v.s
			end = v.e
		} else if v.e > end {
			total += v.e - end
			end = v.e
		}
	}
	return total
}
