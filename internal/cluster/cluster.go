// Package cluster models the parallel machine a machine scheduler
// controls: a set of nodes with per-node memory configuration
// (configuration heterogeneity in the paper's Section 4.1 taxonomy),
// job allocations, and node up/down state driven by the outage log.
//
// The machine is deliberately simple — distributed-memory space
// slicing, one job per node — which is the machine model of the IBM SP
// generation the paper describes ("it is possible for a node to drop
// offline, but the system continues to operate. Any job running on that
// node would have to be restarted, but it has no effect on any other
// running jobs").
//
// Counting and allocation are the per-event hot path of the simulator,
// so the machine maintains its aggregate state incrementally: cached
// up/free/in-use counters updated on every node transition, and
// free-node bitsets bucketed by distinct memory value (ascending), so
// best-fit allocation walks only the free nodes it will take instead of
// scanning and sorting the whole machine. The original O(N) scans are
// kept as scan* functions behind the debugCheck flag, which tests
// enable to cross-validate every cached figure after every mutation.
package cluster

import (
	"fmt"
	"math/bits"
	"sort"

	"parsched/internal/debugchecks"
)

// NoOwner marks a free node.
const NoOwner int64 = 0

// debugCheck, when true, makes every mutating operation cross-validate
// the cached counters and free lists against a from-scratch scan.
// Defaults to the debugchecks build tag (so `go test -tags debugchecks`
// validates every machine in the whole test load); tests can also flip
// it at runtime via EnableDebugChecks. Off in production builds because
// it restores the O(N)-per-event cost the cache exists to remove.
var debugCheck = debugchecks.Enabled

// EnableDebugChecks toggles scan-based cross-validation of the cached
// state after every mutation. Returns the previous setting. Not safe
// for concurrent use with running machines — flip it only around
// single-threaded test bodies.
func EnableDebugChecks(on bool) bool {
	prev := debugCheck
	debugCheck = on
	return prev
}

// Node is one processor/compute node.
type Node struct {
	// Mem is the node's memory in KB (configuration heterogeneity).
	Mem int64
	// Down reports the node is unavailable (outage).
	Down bool
	// Owner is the job (or reservation) occupying the node, NoOwner if
	// free.
	Owner int64
}

// memClass is the free list for one distinct memory value: a bitset of
// free node indices (free = up and unowned) plus its population count.
type memClass struct {
	mem   int64
	free  []uint64 // bit i set iff node i is free and in this class
	count int
}

func (c *memClass) set(i int)   { c.free[i>>6] |= 1 << (uint(i) & 63) }
func (c *memClass) clear(i int) { c.free[i>>6] &^= 1 << (uint(i) & 63) }
func (c *memClass) has(i int) bool {
	return c.free[i>>6]&(1<<(uint(i)&63)) != 0
}

// Machine is a space-sliced parallel computer.
type Machine struct {
	nodes  []Node
	owners map[int64][]int // owner -> node indices

	// Cached aggregates, maintained on every state transition.
	up    int // nodes not down
	inUse int // up nodes with an owner
	nFree int // up nodes without an owner

	// classes are the per-memory-value free lists, ascending by Mem.
	// classOf maps a node index to its (immutable) class index.
	classes []memClass
	classOf []int

	// listPool recycles owner node lists released via ReleaseQuiet, so
	// the allocate/release cycle of a long replay stops allocating a
	// fresh list per job start. Lists handed out by Release (ownership
	// transfer to the caller) are never pooled.
	listPool [][]int
}

// New creates a homogeneous machine of n nodes with memPerNode KB each.
//
//schedlint:coldpath once-per-run constructor
func New(n int, memPerNode int64) *Machine {
	mems := make([]int64, n)
	for i := range mems {
		mems[i] = memPerNode
	}
	return NewHeterogeneous(mems)
}

// NewHeterogeneous creates a machine whose node i has memPerNode[i] KB:
// the "nodes configured with different amounts of resources" case of
// Section 4.1.
//
//schedlint:coldpath once-per-run constructor
func NewHeterogeneous(memPerNode []int64) *Machine {
	n := len(memPerNode)
	m := &Machine{
		nodes:   make([]Node, n),
		owners:  map[int64][]int{},
		classOf: make([]int, n),
	}
	distinct := append([]int64(nil), memPerNode...)
	sort.Slice(distinct, func(a, b int) bool { return distinct[a] < distinct[b] })
	distinct = dedupe(distinct)
	words := (n + 63) / 64
	m.classes = make([]memClass, len(distinct))
	for ci, mem := range distinct {
		m.classes[ci] = memClass{mem: mem, free: make([]uint64, words)}
	}
	for i, mem := range memPerNode {
		m.nodes[i] = Node{Mem: mem}
		ci := sort.Search(len(distinct), func(k int) bool { return distinct[k] >= mem })
		m.classOf[i] = ci
		m.classes[ci].set(i)
		m.classes[ci].count++
	}
	m.up = n
	m.nFree = n
	return m
}

func dedupe(sorted []int64) []int64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// markFree records that node i just became free (up and unowned).
func (m *Machine) markFree(i int) {
	c := &m.classes[m.classOf[i]]
	c.set(i)
	c.count++
	m.nFree++
}

// markBusy records that node i just stopped being free (allocated or
// went down).
func (m *Machine) markBusy(i int) {
	c := &m.classes[m.classOf[i]]
	c.clear(i)
	c.count--
	m.nFree--
}

// firstClass returns the index of the smallest memory class satisfying
// minMem.
func (m *Machine) firstClass(minMem int64) int {
	// Unconstrained requests (and homogeneous machines) start at class 0;
	// skipping the closure-driven search keeps the allocation fast path
	// branch-only.
	if len(m.classes) > 0 && minMem <= m.classes[0].mem {
		return 0
	}
	return sort.Search(len(m.classes), func(k int) bool { return m.classes[k].mem >= minMem })
}

// Total returns the number of nodes, up or down.
func (m *Machine) Total() int { return len(m.nodes) }

// Up returns the number of functional (not down) nodes.
func (m *Machine) Up() int {
	m.check()
	return m.up
}

// Free returns the number of nodes that are up and unallocated.
func (m *Machine) Free() int {
	m.check()
	return m.nFree
}

// FreeWithMem returns the number of up, unallocated nodes with at least
// minMem KB of memory.
func (m *Machine) FreeWithMem(minMem int64) int {
	m.check()
	if minMem <= 0 {
		return m.nFree
	}
	n := 0
	for ci := m.firstClass(minMem); ci < len(m.classes); ci++ {
		n += m.classes[ci].count
	}
	return n
}

// InUse returns the number of allocated (and up) nodes.
func (m *Machine) InUse() int {
	m.check()
	return m.inUse
}

// CanAllocate reports whether count nodes with minMem memory are free.
func (m *Machine) CanAllocate(count int, minMem int64) bool {
	return m.FreeWithMem(minMem) >= count
}

// Allocate assigns count free nodes with at least minMem memory to
// owner and returns their indices. Nodes with the smallest adequate
// memory are chosen first, preserving large-memory nodes for jobs that
// need them (best fit); ties break toward lower node indices. It
// returns false, and allocates nothing, if the request cannot be
// satisfied. Owner must be nonzero and must not already hold an
// allocation.
//
//schedlint:hotpath entry point: allocation kernel, also driven directly by tests and meta
func (m *Machine) Allocate(owner int64, count int, minMem int64) ([]int, bool) {
	chosen, ok := m.allocate(owner, count, minMem)
	if !ok {
		return nil, false
	}
	// Return a copy: the stored list must not alias caller-visible
	// memory (SetUp edits it in place).
	return append([]int(nil), chosen...), true
}

// Claim is Allocate for callers that do not need the node list (the
// simulator's job starts, which only track the owner): same selection,
// same bookkeeping, no defensive copy.
func (m *Machine) Claim(owner int64, count int, minMem int64) bool {
	_, ok := m.allocate(owner, count, minMem)
	return ok
}

// allocate performs the allocation and returns the stored (internal)
// node list.
func (m *Machine) allocate(owner int64, count int, minMem int64) ([]int, bool) {
	if owner == NoOwner {
		panic("cluster: allocation with zero owner")
	}
	if _, dup := m.owners[owner]; dup {
		panic(fmt.Sprintf("cluster: owner %d already holds an allocation", owner)) //schedlint:allow allocfree panic path: caller misuse, unreachable in a correct simulation
	}
	if count <= 0 {
		panic("cluster: non-positive allocation size")
	}
	if m.FreeWithMem(minMem) < count {
		return nil, false
	}
	// Walk the free lists from the smallest adequate class upward,
	// taking lowest-index nodes first within each class — the same
	// (Mem, index) order the original scan-and-sort produced. The node
	// list comes from the ReleaseQuiet pool when one is available;
	// allocation only happens while the pool warms up (or when a pooled
	// list's capacity is outgrown by a larger job).
	var chosen []int
	if n := len(m.listPool); n > 0 {
		chosen = m.listPool[n-1][:0]
		m.listPool[n-1] = nil
		m.listPool = m.listPool[:n-1]
	} else {
		chosen = make([]int, 0, count) //schedlint:allow allocfree pool warm-up: the list is recycled through listPool once the job releases quietly
	}
	need := count
	for ci := m.firstClass(minMem); ci < len(m.classes) && need > 0; ci++ {
		c := &m.classes[ci]
		if c.count == 0 {
			continue
		}
		taken := 0
		for wi := 0; wi < len(c.free) && need > 0; wi++ {
			w := c.free[wi]
			if w == 0 {
				continue
			}
			// Claim the chosen bits of this word in one masked update —
			// ownership and free-list bookkeeping fused into the selection
			// walk, instead of a second per-node pass over chosen.
			var mask uint64
			for w != 0 && need > 0 {
				b := bits.TrailingZeros64(w)
				bit := uint64(1) << uint(b)
				w &^= bit
				mask |= bit
				i := wi<<6 | b
				chosen = append(chosen, i) //schedlint:allow allocfree appends into pooled (or count-capacity) backing; at most count elements, so no growth after pool warm-up
				m.nodes[i].Owner = owner
				taken++
				need--
			}
			c.free[wi] &^= mask
		}
		c.count -= taken
		m.nFree -= taken
	}
	if need > 0 {
		panic("cluster: free-list count disagrees with free-list contents")
	}
	m.inUse += count
	// The class walk emits ascending indices per class, so a
	// single-class pick (the homogeneous machine, or any allocation
	// served from one class) is already sorted.
	if !sort.IntsAreSorted(chosen) {
		sort.Ints(chosen)
	}
	m.owners[owner] = chosen
	m.check()
	return chosen, true
}

// Release frees all nodes held by owner and returns them. Releasing an
// unknown owner returns nil. Ownership of the returned slice transfers
// to the caller; use ReleaseQuiet when the list is not needed, so the
// machine can recycle it.
func (m *Machine) Release(owner int64) []int {
	nodes, ok := m.releaseNodes(owner)
	if !ok {
		return nil
	}
	return nodes
}

// ReleaseQuiet is Release for callers that ignore the node list (the
// simulator's job terminations, which only track owners): same
// bookkeeping, but the internal list is recycled into the allocation
// pool instead of escaping. It reports whether the owner held anything.
//
//schedlint:hotpath every job termination and reservation expiry funnels through here
func (m *Machine) ReleaseQuiet(owner int64) bool {
	nodes, ok := m.releaseNodes(owner)
	if !ok {
		return false
	}
	m.listPool = append(m.listPool, nodes) //schedlint:allow allocfree pool spine: amortized doubling of the recycled-list stack, bounded by peak concurrent owners
	return true
}

// releaseNodes frees all nodes held by owner and returns the stored
// (internal) node list.
func (m *Machine) releaseNodes(owner int64) ([]int, bool) {
	nodes, ok := m.owners[owner]
	if !ok {
		return nil, false
	}
	for _, i := range nodes {
		if m.nodes[i].Owner == owner {
			m.nodes[i].Owner = NoOwner
			if !m.nodes[i].Down {
				m.inUse--
				m.markFree(i)
			}
		}
	}
	delete(m.owners, owner)
	m.check()
	return nodes, true
}

// NodesOf returns the nodes held by owner (nil if none).
func (m *Machine) NodesOf(owner int64) []int {
	return append([]int(nil), m.owners[owner]...)
}

// OwnerOf returns the owner of node i (NoOwner if free).
func (m *Machine) OwnerOf(i int) int64 { return m.nodes[i].Owner }

// MemOf returns the memory of node i.
func (m *Machine) MemOf(i int) int64 { return m.nodes[i].Mem }

// SetDown marks node i down and returns the owner that was evicted
// (NoOwner if the node was free). The owner's other nodes remain
// allocated; the caller (the simulator) decides whether to kill the
// job and release the rest.
func (m *Machine) SetDown(i int) int64 {
	nd := &m.nodes[i]
	if nd.Down {
		return NoOwner
	}
	nd.Down = true
	m.up--
	if nd.Owner != NoOwner {
		m.inUse--
	} else {
		m.markBusy(i)
	}
	m.check()
	return nd.Owner
}

// SetUp marks node i functional again. Any stale ownership is cleared
// (the job was killed when the node went down).
func (m *Machine) SetUp(i int) {
	nd := &m.nodes[i]
	wasDown := nd.Down
	nd.Down = false
	if wasDown {
		m.up++
	}
	if nd.Owner != NoOwner {
		// Remove the node from the stale owner's list if still present.
		owner := nd.Owner
		nodes := m.owners[owner]
		kept := make([]int, 0, len(nodes)) //schedlint:allow allocfree node-recovery path, runs once per repaired node, bounded by the outage schedule
		for _, v := range nodes {
			if v != i {
				kept = append(kept, v)
			}
		}
		m.owners[owner] = kept
		if len(m.owners[owner]) == 0 {
			delete(m.owners, owner)
		}
		nd.Owner = NoOwner
		if !wasDown {
			// The node was up and allocated; it is now up and free.
			m.inUse--
		}
		m.markFree(i)
	} else if wasDown {
		m.markFree(i)
	}
	m.check()
}

// Owners returns the active owners, ascending.
func (m *Machine) Owners() []int64 {
	out := make([]int64, 0, len(m.owners))
	for o := range m.owners {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------
// Reference scans: the original O(N) implementations, retained to
// cross-validate the cached counters (check, Validate, and the
// equivalence property tests).

// scanUp recomputes Up from scratch.
func (m *Machine) scanUp() int {
	n := 0
	for i := range m.nodes {
		if !m.nodes[i].Down {
			n++
		}
	}
	return n
}

// scanFreeWithMem recomputes FreeWithMem from scratch.
func (m *Machine) scanFreeWithMem(minMem int64) int {
	n := 0
	for i := range m.nodes {
		nd := &m.nodes[i]
		if !nd.Down && nd.Owner == NoOwner && nd.Mem >= minMem {
			n++
		}
	}
	return n
}

// scanInUse recomputes InUse from scratch.
func (m *Machine) scanInUse() int {
	n := 0
	for i := range m.nodes {
		if !m.nodes[i].Down && m.nodes[i].Owner != NoOwner {
			n++
		}
	}
	return n
}

// scanBestFit recomputes the allocation the original scan-and-sort
// implementation would choose (nil if infeasible), without mutating.
func (m *Machine) scanBestFit(count int, minMem int64) []int {
	var candidates []int
	for i := range m.nodes {
		nd := &m.nodes[i]
		if !nd.Down && nd.Owner == NoOwner && nd.Mem >= minMem {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) < count {
		return nil
	}
	sort.Slice(candidates, func(a, b int) bool {
		if m.nodes[candidates[a]].Mem != m.nodes[candidates[b]].Mem {
			return m.nodes[candidates[a]].Mem < m.nodes[candidates[b]].Mem
		}
		return candidates[a] < candidates[b]
	})
	chosen := append([]int(nil), candidates[:count]...)
	sort.Ints(chosen)
	return chosen
}

// check cross-validates the cached state against the reference scans
// when debugCheck is enabled. It panics on divergence: a counter drift
// is a simulation-correctness bug, not a recoverable condition.
func (m *Machine) check() {
	if !debugCheck {
		return
	}
	if err := m.validateCached(); err != nil {
		panic("cluster: " + err.Error())
	}
}

// validateCached compares every cached aggregate — counters, per-class
// free-list populations, per-node free bits, class membership — against
// a from-scratch recomputation. Shared by check and Validate.
func (m *Machine) validateCached() error {
	if got := m.scanUp(); got != m.up {
		return fmt.Errorf("cached up=%d, scan=%d", m.up, got) //schedlint:allow allocfree debug-check failure path: runs only once an invariant is already broken
	}
	if got := m.scanInUse(); got != m.inUse {
		return fmt.Errorf("cached inUse=%d, scan=%d", m.inUse, got) //schedlint:allow allocfree debug-check failure path: runs only once an invariant is already broken
	}
	if got := m.scanFreeWithMem(0); got != m.nFree {
		return fmt.Errorf("cached free=%d, scan=%d", m.nFree, got) //schedlint:allow allocfree debug-check failure path: runs only once an invariant is already broken
	}
	for ci := range m.classes {
		c := &m.classes[ci]
		pop := 0
		for _, w := range c.free {
			pop += bits.OnesCount64(w)
		}
		if pop != c.count {
			return fmt.Errorf("class %d (mem %d) count=%d, popcount=%d", ci, c.mem, c.count, pop) //schedlint:allow allocfree debug-check failure path: runs only once an invariant is already broken
		}
	}
	for i := range m.nodes {
		nd := &m.nodes[i]
		free := !nd.Down && nd.Owner == NoOwner
		if got := m.classes[m.classOf[i]].has(i); got != free {
			return fmt.Errorf("node %d free-bit=%v, state free=%v", i, got, free) //schedlint:allow allocfree debug-check failure path: runs only once an invariant is already broken
		}
		if m.classes[m.classOf[i]].mem != nd.Mem {
			return fmt.Errorf("node %d in class with mem %d, node mem %d", //schedlint:allow allocfree debug-check failure path: runs only once an invariant is already broken
				i, m.classes[m.classOf[i]].mem, nd.Mem)
		}
	}
	return nil
}

// Validate checks internal consistency (every owned node appears in its
// owner's list and vice versa, cached counters match a from-scratch
// recomputation). It is used by property tests.
func (m *Machine) Validate() error {
	for i := range m.nodes {
		if o := m.nodes[i].Owner; o != NoOwner {
			found := false
			for _, v := range m.owners[o] {
				if v == i {
					found = true
					break
				}
			}
			if !found && !m.nodes[i].Down {
				return fmt.Errorf("node %d owned by %d but missing from owner list", i, o)
			}
		}
	}
	for o, nodes := range m.owners {
		if len(nodes) == 0 {
			return fmt.Errorf("owner %d has empty node list", o)
		}
		for _, i := range nodes {
			if m.nodes[i].Owner != o {
				return fmt.Errorf("owner %d lists node %d owned by %d", o, i, m.nodes[i].Owner)
			}
		}
	}
	return m.validateCached()
}
