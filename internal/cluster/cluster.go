// Package cluster models the parallel machine a machine scheduler
// controls: a set of nodes with per-node memory configuration
// (configuration heterogeneity in the paper's Section 4.1 taxonomy),
// job allocations, and node up/down state driven by the outage log.
//
// The machine is deliberately simple — distributed-memory space
// slicing, one job per node — which is the machine model of the IBM SP
// generation the paper describes ("it is possible for a node to drop
// offline, but the system continues to operate. Any job running on that
// node would have to be restarted, but it has no effect on any other
// running jobs").
package cluster

import (
	"fmt"
	"sort"
)

// NoOwner marks a free node.
const NoOwner int64 = 0

// Node is one processor/compute node.
type Node struct {
	// Mem is the node's memory in KB (configuration heterogeneity).
	Mem int64
	// Down reports the node is unavailable (outage).
	Down bool
	// Owner is the job (or reservation) occupying the node, NoOwner if
	// free.
	Owner int64
}

// Machine is a space-sliced parallel computer.
type Machine struct {
	nodes  []Node
	owners map[int64][]int // owner -> node indices
}

// New creates a homogeneous machine of n nodes with memPerNode KB each.
func New(n int, memPerNode int64) *Machine {
	mems := make([]int64, n)
	for i := range mems {
		mems[i] = memPerNode
	}
	return NewHeterogeneous(mems)
}

// NewHeterogeneous creates a machine whose node i has memPerNode[i] KB:
// the "nodes configured with different amounts of resources" case of
// Section 4.1.
func NewHeterogeneous(memPerNode []int64) *Machine {
	m := &Machine{
		nodes:  make([]Node, len(memPerNode)),
		owners: map[int64][]int{},
	}
	for i, mem := range memPerNode {
		m.nodes[i] = Node{Mem: mem}
	}
	return m
}

// Total returns the number of nodes, up or down.
func (m *Machine) Total() int { return len(m.nodes) }

// Up returns the number of functional (not down) nodes.
func (m *Machine) Up() int {
	n := 0
	for i := range m.nodes {
		if !m.nodes[i].Down {
			n++
		}
	}
	return n
}

// Free returns the number of nodes that are up and unallocated.
func (m *Machine) Free() int { return m.FreeWithMem(0) }

// FreeWithMem returns the number of up, unallocated nodes with at least
// minMem KB of memory.
func (m *Machine) FreeWithMem(minMem int64) int {
	n := 0
	for i := range m.nodes {
		nd := &m.nodes[i]
		if !nd.Down && nd.Owner == NoOwner && nd.Mem >= minMem {
			n++
		}
	}
	return n
}

// InUse returns the number of allocated (and up) nodes.
func (m *Machine) InUse() int {
	n := 0
	for i := range m.nodes {
		if !m.nodes[i].Down && m.nodes[i].Owner != NoOwner {
			n++
		}
	}
	return n
}

// CanAllocate reports whether count nodes with minMem memory are free.
func (m *Machine) CanAllocate(count int, minMem int64) bool {
	return m.FreeWithMem(minMem) >= count
}

// Allocate assigns count free nodes with at least minMem memory to
// owner and returns their indices. Nodes with the smallest adequate
// memory are chosen first, preserving large-memory nodes for jobs that
// need them (best fit). It returns false, and allocates nothing, if the
// request cannot be satisfied. Owner must be nonzero and must not
// already hold an allocation.
func (m *Machine) Allocate(owner int64, count int, minMem int64) ([]int, bool) {
	if owner == NoOwner {
		panic("cluster: allocation with zero owner")
	}
	if _, dup := m.owners[owner]; dup {
		panic(fmt.Sprintf("cluster: owner %d already holds an allocation", owner))
	}
	if count <= 0 {
		panic("cluster: non-positive allocation size")
	}
	var candidates []int
	for i := range m.nodes {
		nd := &m.nodes[i]
		if !nd.Down && nd.Owner == NoOwner && nd.Mem >= minMem {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) < count {
		return nil, false
	}
	sort.Slice(candidates, func(a, b int) bool {
		if m.nodes[candidates[a]].Mem != m.nodes[candidates[b]].Mem {
			return m.nodes[candidates[a]].Mem < m.nodes[candidates[b]].Mem
		}
		return candidates[a] < candidates[b]
	})
	chosen := append([]int(nil), candidates[:count]...)
	for _, i := range chosen {
		m.nodes[i].Owner = owner
	}
	sort.Ints(chosen)
	m.owners[owner] = chosen
	// Return a copy: the stored list must not alias caller-visible
	// memory (SetUp edits it in place).
	return append([]int(nil), chosen...), true
}

// Release frees all nodes held by owner and returns them. Releasing an
// unknown owner returns nil.
func (m *Machine) Release(owner int64) []int {
	nodes, ok := m.owners[owner]
	if !ok {
		return nil
	}
	for _, i := range nodes {
		if m.nodes[i].Owner == owner {
			m.nodes[i].Owner = NoOwner
		}
	}
	delete(m.owners, owner)
	return nodes
}

// NodesOf returns the nodes held by owner (nil if none).
func (m *Machine) NodesOf(owner int64) []int {
	return append([]int(nil), m.owners[owner]...)
}

// OwnerOf returns the owner of node i (NoOwner if free).
func (m *Machine) OwnerOf(i int) int64 { return m.nodes[i].Owner }

// MemOf returns the memory of node i.
func (m *Machine) MemOf(i int) int64 { return m.nodes[i].Mem }

// SetDown marks node i down and returns the owner that was evicted
// (NoOwner if the node was free). The owner's other nodes remain
// allocated; the caller (the simulator) decides whether to kill the
// job and release the rest.
func (m *Machine) SetDown(i int) int64 {
	nd := &m.nodes[i]
	if nd.Down {
		return NoOwner
	}
	nd.Down = true
	return nd.Owner
}

// SetUp marks node i functional again. Any stale ownership is cleared
// (the job was killed when the node went down).
func (m *Machine) SetUp(i int) {
	nd := &m.nodes[i]
	nd.Down = false
	if nd.Owner != NoOwner {
		// Remove the node from the stale owner's list if still present.
		owner := nd.Owner
		nodes := m.owners[owner]
		kept := make([]int, 0, len(nodes))
		for _, v := range nodes {
			if v != i {
				kept = append(kept, v)
			}
		}
		m.owners[owner] = kept
		if len(m.owners[owner]) == 0 {
			delete(m.owners, owner)
		}
		nd.Owner = NoOwner
	}
}

// Owners returns the active owners, ascending.
func (m *Machine) Owners() []int64 {
	out := make([]int64, 0, len(m.owners))
	for o := range m.owners {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks internal consistency (every owned node appears in its
// owner's list and vice versa). It is used by property tests.
func (m *Machine) Validate() error {
	seen := map[int64]int{}
	for i := range m.nodes {
		if o := m.nodes[i].Owner; o != NoOwner {
			seen[o]++
			found := false
			for _, v := range m.owners[o] {
				if v == i {
					found = true
					break
				}
			}
			if !found && !m.nodes[i].Down {
				return fmt.Errorf("node %d owned by %d but missing from owner list", i, o)
			}
		}
	}
	for o, nodes := range m.owners {
		if len(nodes) == 0 {
			return fmt.Errorf("owner %d has empty node list", o)
		}
		for _, i := range nodes {
			if m.nodes[i].Owner != o {
				return fmt.Errorf("owner %d lists node %d owned by %d", o, i, m.nodes[i].Owner)
			}
		}
	}
	_ = seen
	return nil
}
