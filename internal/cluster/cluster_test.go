package cluster

import (
	"testing"
	"testing/quick"

	"parsched/internal/stats"
)

func TestNewCounts(t *testing.T) {
	m := New(16, 1024)
	if m.Total() != 16 || m.Up() != 16 || m.Free() != 16 || m.InUse() != 0 {
		t.Fatalf("fresh machine: total=%d up=%d free=%d inuse=%d",
			m.Total(), m.Up(), m.Free(), m.InUse())
	}
}

func TestAllocateRelease(t *testing.T) {
	m := New(8, 1024)
	nodes, ok := m.Allocate(42, 3, 0)
	if !ok || len(nodes) != 3 {
		t.Fatalf("allocate failed: %v %v", nodes, ok)
	}
	if m.Free() != 5 || m.InUse() != 3 {
		t.Fatalf("after alloc: free=%d inuse=%d", m.Free(), m.InUse())
	}
	for _, n := range nodes {
		if m.OwnerOf(n) != 42 {
			t.Fatalf("node %d owner = %d", n, m.OwnerOf(n))
		}
	}
	got := m.Release(42)
	if len(got) != 3 || m.Free() != 8 {
		t.Fatalf("release returned %v, free=%d", got, m.Free())
	}
	if m.Release(42) != nil {
		t.Fatal("double release should return nil")
	}
}

func TestAllocateInsufficient(t *testing.T) {
	m := New(4, 1024)
	if _, ok := m.Allocate(1, 5, 0); ok {
		t.Fatal("allocation beyond machine size succeeded")
	}
	if m.Free() != 4 {
		t.Fatal("failed allocation must not leak nodes")
	}
}

func TestAllocateDuplicateOwnerPanics(t *testing.T) {
	m := New(4, 1024)
	m.Allocate(1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate owner")
		}
	}()
	m.Allocate(1, 1, 0)
}

func TestAllocateZeroOwnerPanics(t *testing.T) {
	m := New(4, 1024)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero owner")
		}
	}()
	m.Allocate(NoOwner, 1, 0)
}

func TestMemoryConstraints(t *testing.T) {
	// 2 small + 2 big nodes.
	m := NewHeterogeneous([]int64{512, 512, 4096, 4096})
	if m.FreeWithMem(1024) != 2 {
		t.Fatalf("FreeWithMem(1024) = %d", m.FreeWithMem(1024))
	}
	// Best fit: a no-memory job must take small nodes first.
	nodes, ok := m.Allocate(1, 2, 0)
	if !ok {
		t.Fatal("allocate failed")
	}
	for _, n := range nodes {
		if m.MemOf(n) != 512 {
			t.Fatalf("best-fit violated: got node with %d KB", m.MemOf(n))
		}
	}
	// Big-memory job still fits.
	if _, ok := m.Allocate(2, 2, 2048); !ok {
		t.Fatal("big-memory job blocked by best-fit failure")
	}
}

func TestMemoryInfeasible(t *testing.T) {
	m := NewHeterogeneous([]int64{512, 512})
	if m.CanAllocate(1, 1024) {
		t.Fatal("no node has 1024 KB")
	}
	if _, ok := m.Allocate(9, 1, 1024); ok {
		t.Fatal("infeasible memory allocation succeeded")
	}
}

func TestSetDownEvictsOwner(t *testing.T) {
	m := New(4, 1024)
	nodes, _ := m.Allocate(7, 2, 0)
	evicted := m.SetDown(nodes[0])
	if evicted != 7 {
		t.Fatalf("evicted = %d, want 7", evicted)
	}
	if m.Up() != 3 {
		t.Fatalf("up = %d", m.Up())
	}
	// Second SetDown on same node is a no-op.
	if again := m.SetDown(nodes[0]); again != NoOwner {
		t.Fatalf("second SetDown returned %d", again)
	}
}

func TestSetDownFreeNode(t *testing.T) {
	m := New(4, 1024)
	if ev := m.SetDown(0); ev != NoOwner {
		t.Fatalf("evicted %d from free node", ev)
	}
	if m.Free() != 3 {
		t.Fatalf("free = %d", m.Free())
	}
}

func TestSetUpClearsStaleOwnership(t *testing.T) {
	m := New(4, 1024)
	nodes, _ := m.Allocate(7, 2, 0)
	m.SetDown(nodes[0])
	// Simulator would kill job 7 and release; but even without release,
	// SetUp must clear the stale owner.
	m.SetUp(nodes[0])
	if m.OwnerOf(nodes[0]) != NoOwner {
		t.Fatal("stale owner survived SetUp")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDownNodesNotAllocatable(t *testing.T) {
	m := New(2, 1024)
	m.SetDown(0)
	nodes, ok := m.Allocate(5, 1, 0)
	if !ok {
		t.Fatal("one node still up")
	}
	if nodes[0] != 1 {
		t.Fatalf("allocated down node: %v", nodes)
	}
	if _, ok := m.Allocate(6, 1, 0); ok {
		t.Fatal("no nodes left")
	}
}

func TestOwnersSorted(t *testing.T) {
	m := New(8, 1024)
	m.Allocate(5, 1, 0)
	m.Allocate(2, 1, 0)
	m.Allocate(9, 1, 0)
	owners := m.Owners()
	if len(owners) != 3 || owners[0] != 2 || owners[1] != 5 || owners[2] != 9 {
		t.Fatalf("owners = %v", owners)
	}
}

func TestNodesOfReturnsCopy(t *testing.T) {
	m := New(4, 1024)
	m.Allocate(1, 2, 0)
	nodes := m.NodesOf(1)
	nodes[0] = 99
	if m.NodesOf(1)[0] == 99 {
		t.Fatal("NodesOf exposed internal state")
	}
}

// TestCountersMatchScansProperty drives randomized
// allocate/release/SetDown/SetUp sequences with heterogeneous memory
// and asserts after every step that the cached counters and
// per-memory-class free lists equal a from-scratch recomputation, and
// that Allocate picks exactly the nodes the original scan-and-sort
// implementation would have picked. debugCheck additionally
// cross-validates inside every mutation.
func TestCountersMatchScansProperty(t *testing.T) {
	defer EnableDebugChecks(EnableDebugChecks(true))
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		mems := make([]int64, 48)
		for i := range mems {
			mems[i] = int64(1024 << rng.Intn(4)) // four memory classes
		}
		m := NewHeterogeneous(mems)
		// live is an ordered list so owner selection below is a pure
		// function of the seed (map iteration would not replay).
		var live []int64
		drop := func(o int64) {
			for k, v := range live {
				if v == o {
					live = append(live[:k], live[k+1:]...)
					return
				}
			}
		}
		next := int64(1)
		for step := 0; step < 400; step++ {
			switch rng.Intn(5) {
			case 0, 1: // allocate with a random memory floor
				count := 1 + rng.Intn(10)
				minMem := int64(1024 << rng.Intn(5))
				if rng.Intn(3) == 0 {
					minMem = 0
				}
				want := m.scanBestFit(count, minMem)
				got, ok := m.Allocate(next, count, minMem)
				if (want == nil) == ok {
					t.Logf("step %d: feasibility diverged (scan %v, got %v)", step, want, ok)
					return false
				}
				if ok {
					if len(got) != len(want) {
						t.Logf("step %d: chose %v, scan chose %v", step, got, want)
						return false
					}
					for k := range got {
						if got[k] != want[k] {
							t.Logf("step %d: chose %v, scan chose %v", step, got, want)
							return false
						}
					}
					live = append(live, next)
				}
				next++
			case 2: // release a random live owner
				if len(live) > 0 {
					k := rng.Intn(len(live))
					m.Release(live[k])
					live = append(live[:k], live[k+1:]...)
				}
			case 3: // take a node down (kill + release the victim)
				n := rng.Intn(len(mems))
				if evicted := m.SetDown(n); evicted != NoOwner {
					m.Release(evicted)
					drop(evicted)
				}
			case 4: // bring a random node up (may already be up)
				m.SetUp(rng.Intn(len(mems)))
			}
			if err := m.Validate(); err != nil {
				t.Logf("step %d: %v", step, err)
				return false
			}
			if m.Up() != m.scanUp() || m.InUse() != m.scanInUse() ||
				m.Free() != m.scanFreeWithMem(0) {
				t.Logf("step %d: counters diverged from scans", step)
				return false
			}
			for _, minMem := range []int64{0, 1024, 2048, 4096, 8192, 1 << 20} {
				if m.FreeWithMem(minMem) != m.scanFreeWithMem(minMem) {
					t.Logf("step %d: FreeWithMem(%d) diverged", step, minMem)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSetUpWhileUpClearsAllocation pins the historical (surprising)
// SetUp contract: calling SetUp on an up, allocated node evicts the
// allocation — counters must follow.
func TestSetUpWhileUpClearsAllocation(t *testing.T) {
	defer EnableDebugChecks(EnableDebugChecks(true))
	m := New(4, 1024)
	nodes, _ := m.Allocate(7, 2, 0)
	m.SetUp(nodes[0])
	if m.OwnerOf(nodes[0]) != NoOwner {
		t.Fatal("SetUp on an up node must clear ownership")
	}
	if m.Free() != 3 || m.InUse() != 1 || m.Up() != 4 {
		t.Fatalf("free=%d inuse=%d up=%d", m.Free(), m.InUse(), m.Up())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocationInvariantProperty drives random allocate/release/outage
// sequences and checks machine consistency plus the capacity invariant
// (free + in-use + down-free == total).
func TestAllocationInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		m := New(32, 1024)
		live := map[int64]bool{}
		next := int64(1)
		down := map[int]bool{}
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0: // allocate
				count := 1 + rng.Intn(8)
				if _, ok := m.Allocate(next, count, 0); ok {
					live[next] = true
				}
				next++
			case 1: // release a random live owner
				for o := range live {
					m.Release(o)
					delete(live, o)
					break
				}
			case 2: // take a node down
				n := rng.Intn(32)
				if evicted := m.SetDown(n); evicted != NoOwner {
					// Simulator contract: kill and release the victim.
					m.Release(evicted)
					delete(live, evicted)
				}
				down[n] = true
			case 3: // bring a node up
				for n := range down {
					m.SetUp(n)
					delete(down, n)
					break
				}
			}
			if err := m.Validate(); err != nil {
				t.Logf("step %d: %v", step, err)
				return false
			}
			if m.Free() < 0 || m.InUse() < 0 || m.Up() > m.Total() {
				return false
			}
			if m.Free()+m.InUse() != m.Up() {
				t.Logf("free %d + inuse %d != up %d", m.Free(), m.InUse(), m.Up())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
