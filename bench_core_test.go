package parsched

// Large-scale stress benchmarks for the simulation core. These are the
// benchmarks the perf trajectory is measured against (scripts/bench.sh
// emits them into BENCH_PR2.json): two macro-benchmarks replaying a
// 20k-job Lublin workload on a 512-node machine under the two
// backfilling families — the workload scale of the Mu'alem & Feitelson
// SWF evaluations — plus micro-benchmarks for the cluster allocator and
// the scheduler-visible running set, which dominate per-event cost.

import (
	"testing"

	"parsched/internal/cluster"
	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/model/lublin"
	"parsched/internal/sched"
	"parsched/internal/sim"
)

// largeWorkload is shared by the macro-benchmarks: one deterministic
// 20k-job trace generated once per process.
var largeWorkload *Workload

func benchLargeWorkload(b *testing.B) *Workload {
	if largeWorkload == nil {
		largeWorkload = lublin.Default().Generate(ModelConfig{
			MaxNodes: 512, Jobs: 20000, Seed: 7, Load: 0.85, EstimateFactor: 2,
		})
	}
	if len(largeWorkload.Jobs) != 20000 {
		b.Fatalf("short workload: %d jobs", len(largeWorkload.Jobs))
	}
	return largeWorkload
}

func benchLargeSim(b *testing.B, scheduler string) {
	w := benchLargeWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sched.New(scheduler)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(w, s, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report(512).Finished == 0 {
			b.Fatal("nothing finished")
		}
	}
}

func BenchmarkLargeEASY(b *testing.B)         { benchLargeSim(b, "easy") }
func BenchmarkLargeConservative(b *testing.B) { benchLargeSim(b, "cons") }

// congestedHorizon caps the congested replay: the burst has fully
// arrived by then, and every runtime is stretched past it, so the
// measured phase is the congestion itself rather than the drain.
const congestedHorizon = int64(57600)

// congestedLargeWorkload is the deep-queue variant: Lublin job sizes,
// but arrivals compressed into a tight burst and runtimes stretched
// past the horizon, so the machine saturates in the first few minutes
// and thousands of jobs sit waiting — every one of them holding a
// reservation a conservative pass must honour. This is the regime where
// a from-scratch walk per event is cubic in the burst (submits × queue
// × profile segments) and the reservation ledger's resumable passes
// keep it near-linear; the ablation pair (BenchmarkAblationLedgerOn/
// Off) pins the same gap at a size the from-scratch arm can still
// finish.
var congestedLarge *Workload

func benchCongestedWorkload(b *testing.B) *Workload {
	if congestedLarge == nil {
		congestedLarge = lublin.Default().Generate(ModelConfig{
			MaxNodes: 512, Jobs: 4000, Seed: 42, Load: 0.9, EstimateFactor: 2,
		})
		for i, j := range congestedLarge.Jobs {
			j.Submit = int64(i) * 3
			j.Runtime = congestedHorizon + 3600 + int64(i%7)*600
			j.Estimate = 2 * j.Runtime
		}
	}
	if len(congestedLarge.Jobs) != 4000 {
		b.Fatalf("short workload: %d jobs", len(congestedLarge.Jobs))
	}
	return congestedLarge
}

// BenchmarkLargeConservativeCongested replays the deep-queue burst
// under conservative backfilling with the reservation ledger on (the
// default). Nothing finishes inside the horizon, so correctness is
// checked on starts: the machine must saturate while the queue stays
// deep.
func BenchmarkLargeConservativeCongested(b *testing.B) {
	w := benchCongestedWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sched.New("cons")
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(w, s, sim.Options{Horizon: congestedHorizon})
		if err != nil {
			b.Fatal(err)
		}
		started, waiting := startedWaiting(res)
		if started == 0 || waiting < 1000 {
			b.Fatalf("not congested: %d started, %d waiting", started, waiting)
		}
	}
}

// startedWaiting counts jobs that began running vs jobs still queued at
// the horizon.
func startedWaiting(res *sim.Result) (started, waiting int) {
	for _, o := range res.Outcomes {
		if o.Start >= 0 {
			started++
		} else {
			waiting++
		}
	}
	return started, waiting
}

// BenchmarkAllocate512 exercises best-fit allocation on a 512-node
// machine with four memory classes at ~50% occupancy: the allocator's
// steady state during a backfilling run.
func BenchmarkAllocate512(b *testing.B) {
	mems := make([]int64, 512)
	for i := range mems {
		mems[i] = int64(1024 << (i % 4)) // 1, 2, 4, 8 GB classes
	}
	m := cluster.NewHeterogeneous(mems)
	// Pre-fill half the machine so Allocate works against a fragmented
	// free set, as it does mid-simulation.
	for o := int64(1); o <= 16; o++ {
		if _, ok := m.Allocate(o, 16, 0); !ok {
			b.Fatal("prefill failed")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := int64(1000 + i)
		if _, ok := m.Allocate(owner, 32, 2048); !ok {
			b.Fatal("allocate failed")
		}
		m.Release(owner)
	}
}

// BenchmarkRunningSet measures the cost of the scheduler-visible
// Running() view with 256 concurrent jobs — the call every scheduler
// callback makes before building its availability profile.
func BenchmarkRunningSet(b *testing.B) {
	engine := &des.Engine{}
	s, err := sched.New("fcfs")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := sim.NewInstance(engine, "bench", 512, s, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		j := &core.Job{
			ID: int64(i + 1), Size: 2,
			Runtime: int64(1000000 + i*37), Estimate: int64(1000000 + i*37),
		}
		inst.SubmitAt(j, 0)
	}
	engine.RunUntil(10)
	if got := len(inst.Running()); got != 256 {
		b.Fatalf("running = %d, want 256", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(inst.Running()) != 256 {
			b.Fatal("running set changed")
		}
	}
}
