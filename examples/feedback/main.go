// Feedback: Section 2.2's closed-loop argument made concrete. The same
// workload is replayed twice: open loop (recorded submit times) and
// closed loop (jobs in a user's edit-compile-run chain are submitted a
// think time after their predecessor terminates). Past saturation the
// open-loop replay explodes while the closed loop self-throttles —
// the reason the standard format has preceding-job and think-time
// fields.
package main

import (
	"fmt"
	"log"

	"parsched"
)

func main() {
	fmt.Println("open vs closed loop under rising load (lublin99 + inferred chains, easy)")
	fmt.Printf("%-6s  %14s  %14s  %8s\n", "load", "open resp(s)", "closed resp(s)", "linked")

	for _, load := range []float64{0.6, 0.8, 1.0, 1.2, 1.4} {
		w, err := parsched.Generate("lublin99", parsched.ModelConfig{
			MaxNodes: 128, Jobs: 3000, Seed: 23, Load: load, EstimateFactor: 2, //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
		})
		if err != nil {
			log.Fatal(err)
		}
		// Insert postulated dependencies exactly as the paper suggests:
		// same user, submitted within an hour of the previous job's
		// termination.
		linked := parsched.InferFeedback(w, 3600)

		open, err := parsched.Simulate(w, "easy", parsched.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		closed, err := parsched.Simulate(w, "easy", parsched.SimOptions{Feedback: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %14.0f  %14.0f  %7.1f%%\n",
			load,
			open.Report(w.MaxNodes).Response.Mean,
			closed.Report(w.MaxNodes).Response.Mean,
			100*float64(linked)/float64(len(w.Jobs)))
	}
	fmt.Println("\n(the open-loop replay overstates saturation response: its arrivals ignore the system's own delays)")
}
