// Backfill study: the workhorse evaluation of the JSSPP community —
// the scheduler family compared on the same workload across a load
// sweep, showing where backfilling's advantage opens up and what bad
// user estimates cost it.
package main

import (
	"fmt"
	"log"

	"parsched"
)

func main() {
	schedulers := []string{"fcfs", "firstfit", "sjf", "easy", "cons"}

	fmt.Println("mean bounded slowdown by offered load (lublin99, 128 nodes, 3000 jobs)")
	fmt.Printf("%-6s", "load")
	for _, s := range schedulers {
		fmt.Printf("  %10s", s)
	}
	fmt.Println()

	for _, load := range []float64{0.5, 0.7, 0.85, 0.95} {
		w, err := parsched.Generate("lublin99", parsched.ModelConfig{
			MaxNodes: 128, Jobs: 3000, Seed: 11, Load: load, EstimateFactor: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f", load)
		for _, s := range schedulers {
			res, err := parsched.Simulate(w, s, parsched.SimOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %10.2f", res.Report(w.MaxNodes).BSLD.Mean)
		}
		fmt.Println()
	}

	// The estimate-quality ablation: EASY with the users' padded
	// estimates versus perfect information.
	fmt.Println("\nEASY sensitivity to estimate quality (load 0.85):")
	w, _ := parsched.Generate("lublin99", parsched.ModelConfig{
		MaxNodes: 128, Jobs: 3000, Seed: 11, Load: 0.85, EstimateFactor: 2,
	})
	user, _ := parsched.Simulate(w, "easy", parsched.SimOptions{})
	perfect, _ := parsched.Simulate(w, "easy", parsched.SimOptions{PerfectEstimates: true})
	fmt.Printf("  user estimates:    mean wait %6.0fs\n", user.Report(128).Wait.Mean)
	fmt.Printf("  perfect estimates: mean wait %6.0fs\n", perfect.Report(128).Wait.Mean)
}
