// Backfill study: the workhorse evaluation of the JSSPP community —
// a scheduler family compared on the same workload across a load
// sweep, showing where backfilling's advantage opens up and what bad
// user estimates cost it.
//
// Schedulers are named by spec strings (family(param, key=value)) and
// each sweep is one RunSpec — the unified, JSON-serializable run
// configuration — so the whole study is reproducible from the specs
// alone. Note "easy(reserve=2)": the backfill reservation depth is a
// spec parameter, not a new scheduler implementation.
package main

import (
	"fmt"
	"log"

	"parsched"
)

func main() {
	schedulers := []string{"fcfs", "firstfit", "sjf", "easy", "easy(reserve=2)", "cons"}
	loads := []float64{0.5, 0.7, 0.85, 0.95}

	// One RunSpec per scheduler: spec × source × load points. The same
	// seed and source mean every scheduler sees the same workloads.
	bsld := map[string][]parsched.RunResult{}
	for _, s := range schedulers {
		spec, err := parsched.ParseSchedulerSpec(s)
		if err != nil {
			log.Fatal(err)
		}
		results, err := parsched.Run(parsched.RunSpec{
			Scheduler: spec,
			Source:    parsched.ParseWorkloadSource("model:lublin99"),
			Jobs:      3000, Nodes: 128, Seed: 11, //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
			Loads: loads,
		})
		if err != nil {
			log.Fatal(err)
		}
		bsld[s] = results
	}

	fmt.Println("mean bounded slowdown by offered load (lublin99, 128 nodes, 3000 jobs)")
	fmt.Printf("%-6s", "load")
	for _, s := range schedulers {
		fmt.Printf("  %15s", s)
	}
	fmt.Println()
	for i, load := range loads {
		fmt.Printf("%-6.2f", load)
		for _, s := range schedulers {
			fmt.Printf("  %15.2f", bsld[s][i].Report.BSLD.Mean)
		}
		fmt.Println()
	}

	// The estimate-quality ablation: EASY with the users' padded
	// estimates versus perfect information — the same RunSpec with one
	// sim option flipped.
	rs := parsched.RunSpec{
		Scheduler: parsched.SchedulerSpec{Family: "easy"},
		Source:    parsched.ParseWorkloadSource("model:lublin99"),
		Jobs:      3000, Nodes: 128, Seed: 11, //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
		Loads: []float64{0.85},
	}
	user, err := parsched.Run(rs)
	if err != nil {
		log.Fatal(err)
	}
	rs.Sim.PerfectEstimates = true
	perfect, err := parsched.Run(rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEASY sensitivity to estimate quality (load 0.85):")
	fmt.Printf("  user estimates:    mean wait %6.0fs\n", user[0].Report.Wait.Mean)
	fmt.Printf("  perfect estimates: mean wait %6.0fs\n", perfect[0].Report.Wait.Mean)
}
