// Quickstart: generate a workload from the Lublin model, write it as a
// Standard Workload Format file, read it back, simulate it under EASY
// backfilling, and print the metric battery — the full paper pipeline
// in thirty lines.
package main

import (
	"bytes"
	"fmt"
	"log"

	"parsched"
)

func main() {
	// 1. Generate a synthetic workload with the model the paper calls
	//    "relatively representative of multiple workloads".
	w, err := parsched.Generate("lublin99", parsched.ModelConfig{
		MaxNodes: 128, Jobs: 2000, Seed: 7, Load: 0.75, EstimateFactor: 2, //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Round-trip it through the standard workload format.
	var buf bytes.Buffer
	if err := parsched.WriteSWF(&buf, parsched.WorkloadToSWF(w)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SWF file: %d bytes, first line of data:\n", buf.Len())
	swfLog, err := parsched.ReadSWF(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", swfLog.Records[0])
	if findings := parsched.ValidateSWF(swfLog); len(findings) > 0 {
		log.Fatalf("generated file violates the standard: %s", findings[0])
	}
	fmt.Println("  validates cleanly against the standard's consistency rules")

	// 3. Simulate under two schedulers and compare. Schedulers are
	//    named by spec strings — family(param, key=value) — parsed and
	//    validated against the scheduler registry; "fcfs" and "easy"
	//    are the zero-parameter specs of their families.
	for _, scheduler := range []string{"fcfs", "easy"} {
		spec, err := parsched.ParseSchedulerSpec(scheduler)
		if err != nil {
			log.Fatal(err)
		}
		res, err := parsched.Simulate(w, spec.String(), parsched.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report(w.MaxNodes)
		fmt.Printf("%-5s mean wait %6.0fs   mean bounded slowdown %7.2f   utilization %.3f\n",
			scheduler, r.Wait.Mean, r.BSLD.Mean, r.Utilization)
	}
	fmt.Println("(backfilling should cut both wait and slowdown at equal utilization)")
}
