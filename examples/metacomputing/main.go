// Metacomputing: Figure 1 of the paper end to end. Users submit meta
// jobs to a meta-scheduler, which consults per-site queue-wait
// predictors and dispatches to machine schedulers (EASY instances on
// each site); a co-allocating application then negotiates simultaneous
// advance reservations across two sites.
package main

import (
	"fmt"
	"log"

	"parsched/internal/core"
	"parsched/internal/meta"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/predict"
	"parsched/internal/sched"
	"parsched/internal/stats"
)

func main() {
	// --- Machine schedulers (Figure 1, bottom): four sites with their
	// own local workloads at very different loads.
	var specs []meta.SiteSpec
	for i, load := range []float64{0.3, 0.5, 0.8, 1.1} {
		local := lublin.Default().Generate(model.Config{
			MaxNodes: 64, Jobs: 800, Seed: int64(100 + i), Load: load, EstimateFactor: 2,
		})
		local.Name = fmt.Sprintf("local-%d", i)
		specs = append(specs, meta.SiteSpec{
			Name:      fmt.Sprintf("site%d", i),
			Nodes:     64,
			Scheduler: sched.NewEASYWindows(),
			Local:     local,
			Predictor: predict.NewCategory(),
		})
	}
	grid, err := meta.NewGrid(specs)
	if err != nil {
		log.Fatal(err)
	}

	// --- Users (Figure 1, top): a stream of meta jobs handed to the
	// meta-scheduler.
	rng := stats.NewRNG(2026) //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
	var jobs []*core.Job
	t := int64(3600)
	for i := 0; i < 150; i++ {
		t += int64(rng.Intn(2000)) + 100
		rt := int64(600 + rng.Intn(5400))
		jobs = append(jobs, &core.Job{
			ID: int64(i + 1), Submit: t, Size: 1 << rng.Intn(5),
			Runtime: rt, Estimate: 2 * rt, User: 1 + int64(rng.Intn(12)),
		})
	}
	grid.SubmitMeta(jobs, meta.PredictedWaitPolicy{})

	// --- A co-allocating meta application: 64 processors split across
	// two sites, simultaneously, for two hours.
	grid.SubmitCoAlloc([]meta.CoAllocRequest{
		{ID: 1, Submit: 50000, Procs: 64, Duration: 7200, Parts: 2},
	})

	grid.Run(0)

	outs, lost := grid.MetaOutcomes()
	r := metrics.Compute("predicted-wait", "grid", outs, grid.TotalNodes())
	fmt.Printf("meta-scheduler: %d meta jobs dispatched (%d infeasible)\n", len(outs), lost)

	// One shared metrics table for the meta view and every machine
	// scheduler — the renderer lives on Report, so new columns (the
	// wait percentiles) appear here automatically.
	fmt.Println(metrics.TableHeader())
	fmt.Println(r.TableRow())
	for _, row := range metrics.SortedTableRows("easy+win", grid.LocalOutcomes(), 64) {
		fmt.Println(row)
	}

	for _, ca := range grid.CoAllocations() {
		fmt.Printf("co-allocation: %d procs across %v, negotiated start +%ds, granted=%v\n",
			ca.Request.Procs, ca.Sites, ca.Delay(), ca.Granted)
	}
}
