// Outage-aware scheduling: Section 2.2's outage-format proposal put to
// work. A machine suffers weekly announced maintenance plus random node
// failures; an outage-oblivious EASY restarts every job the maintenance
// kills, while the aware variant drains around the announced windows.
// The outage log uses exactly the fields the paper proposes (announced
// time, start, end, type, affected components).
package main

import (
	"fmt"
	"log"

	"parsched"
	"parsched/internal/outage"
	"parsched/internal/stats"
)

func main() {
	w, err := parsched.Generate("lublin99", parsched.ModelConfig{
		MaxNodes: 128, Jobs: 3000, Seed: 17, Load: 0.7, EstimateFactor: 2, //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
	})
	if err != nil {
		log.Fatal(err)
	}
	horizon := w.Span() + 7*86400

	olog := outage.Generate(outage.GeneratorConfig{
		Nodes:   128,
		Horizon: horizon,
		// Node failures roughly daily, ~30 minute repairs, sudden.
		MTBF:   stats.Exponential{Lambda: 1.0 / 86400},
		Repair: stats.LogNormal{Mu: 7.5, Sigma: 0.7},
		// Whole-machine maintenance: 4 hours weekly, announced a day
		// ahead — the "known in advance" case of the outage format.
		MaintenanceEvery:  7 * 86400,
		MaintenanceLength: 4 * 3600,
		MaintenanceLead:   86400,
	}, 99) //schedlint:allow seedflow example: the fixed seed keeps the demo output stable and copy-pastable
	planned, sudden := 0, 0
	for _, r := range olog.Records {
		if r.Kind.Planned() {
			planned++
		} else {
			sudden++
		}
	}
	fmt.Printf("outage log: %d records (%d announced maintenance, %d sudden failures)\n\n",
		len(olog.Records), planned, sudden)

	fmt.Printf("%-10s  %10s  %9s  %9s  %14s\n", "scheduler", "meanWait", "meanBSLD", "restarts", "lostWork(p-h)")
	for _, schedName := range []string{"easy", "easy+win"} {
		res, err := parsched.Simulate(w, schedName, parsched.SimOptions{Outages: olog})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report(w.MaxNodes)
		fmt.Printf("%-10s  %9.0fs  %9.2f  %9d  %14.1f\n",
			schedName, r.Wait.Mean, r.BSLD.Mean, r.Restarts, float64(r.LostWork)/3600)
	}
	fmt.Println("\n(the aware scheduler avoids starting jobs that would cross announced windows:")
	fmt.Println(" maintenance kills disappear; only the sudden failures still cost work)")
}
