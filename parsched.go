// Package parsched is a library for the evaluation of parallel job
// schedulers, reproducing Chapin et al., "Benchmarks and Standards for
// the Evaluation of Parallel Job Schedulers" (JSSPP/IPPS 1999).
//
// It provides:
//
//   - the Standard Workload Format v2 (read, write, validate, clean,
//     convert, anonymize) — internal/swf;
//   - the proposed standard outage-log format and generators —
//     internal/outage;
//   - the cited statistical workload models (Feitelson '96, Jann '97,
//     Lublin '99, Downey '97) plus a naive baseline — internal/model;
//   - a deterministic discrete-event machine-scheduler simulator with
//     FCFS/SJF/LXF, EASY and conservative backfilling, gang scheduling,
//     moldable jobs, outages, feedback (closed-loop think times), and
//     advance reservations — internal/{des,cluster,sched,sim};
//   - metacomputing: multi-site grids, meta-scheduler policies,
//     queue-wait prediction, and co-allocation — internal/{predict,meta};
//   - the WARMstones evaluation environment: annotated program graphs,
//     canonical metasystems, mapping policies, two simulation
//     fidelities — internal/{graph,warmstones};
//   - trace workload sources that make real SWF logs experiment
//     substrates (clean, rescale to a target load, resample per
//     replication) — internal/workload/trace;
//   - the E1–E10 experiment battery regenerating the paper's
//     evaluation programme on models or real traces —
//     internal/experiments.
//
// This root package is a thin facade over those subsystems: the type
// aliases below give external importers names for the core types, and
// the functions cover the common workflows (generate → simulate →
// report; load → validate → clean; run experiment battery).
package parsched

import (
	"context"
	"fmt"
	"io"

	"parsched/internal/core"
	"parsched/internal/experiments"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/registry"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/swf"
	"parsched/internal/workload/trace"
)

// Aliases for the domain types a library user manipulates.
type (
	// Workload is an ordered collection of jobs plus machine context.
	Workload = core.Workload
	// Job is one unit of work submitted to a machine scheduler.
	Job = core.Job
	// Report aggregates scheduling metrics for one run.
	Report = metrics.Report
	// Outcome is the scheduling result of one job.
	Outcome = metrics.Outcome
	// SimOptions configure a simulation run.
	SimOptions = sim.Options
	// SimResult is the output of a simulation run.
	SimResult = sim.Result
	// SWFLog is a parsed standard workload file.
	SWFLog = swf.Log
	// OutageLog is a parsed standard outage file.
	OutageLog = outage.Log
	// ModelConfig carries workload-model generation knobs.
	ModelConfig = model.Config
	// ExperimentTable is one table of experiment output.
	ExperimentTable = experiments.Table
	// ExperimentMetric is one typed observation behind a table row.
	ExperimentMetric = experiments.Metric
	// BatchResult is the structured outcome of a parallel battery run.
	BatchResult = experiments.BatchResult
	// TraceSource is a cleaned, replay-ready view of a real SWF log.
	TraceSource = trace.Source
	// TraceOptions select the workload a TraceSource derives: target
	// offered load, truncation, and replication variant.
	TraceOptions = trace.Options
	// ExperimentConfig scales the experiment battery and selects its
	// workload substrate (synthetic model or real trace).
	ExperimentConfig = experiments.Config
	// BatchOptions configure the parallel battery (worker-pool size,
	// replications, per-cell callback).
	BatchOptions = experiments.BatchOptions
	// SchedulerSpec is a parsed scheduler specification in the spec
	// grammar: family("easy", "gang") plus typed parameters, e.g.
	// "easy(reserve=2, window)". Legacy names parse to specs.
	SchedulerSpec = sched.Spec
	// RunSpec is the unified, JSON-serializable run configuration:
	// scheduler spec × workload source × sim options × load points.
	RunSpec = experiments.RunSpec
	// RunResult is the outcome of one load point of a RunSpec.
	RunResult = experiments.RunResult
	// SourceSpec names a workload substrate (model:<name> or
	// trace:<path>).
	SourceSpec = experiments.Source
	// SimSpec is the serializable subset of the simulation options.
	SimSpec = experiments.SimSpec
	// Collector is the streaming metrics observer: feed it one Outcome
	// at a time (or attach it to a simulation via SimOptions.Observers)
	// and read the full Report without retaining the outcome slice.
	Collector = metrics.Collector
	// CollectorOptions configure a Collector: labels, bounded-slowdown
	// tau, warmup/cooldown truncation, O(1)-memory quantile sketches.
	CollectorOptions = metrics.CollectorOptions
	// MetricsSpec is the serializable collector configuration a
	// RunSpec carries.
	MetricsSpec = experiments.MetricsSpec
	// TimeSeries is the sampled utilization/queue/backlog series a
	// Collector records when the simulator samples.
	TimeSeries = metrics.TimeSeries
	// TimeSample is one instant of a TimeSeries.
	TimeSample = metrics.Sample
	// SimObserver receives outcomes as the simulation produces them.
	SimObserver = sim.Observer
)

// NewCollector returns a streaming metrics collector.
func NewCollector(opts CollectorOptions) *Collector { return metrics.NewCollector(opts) }

// Models lists the available workload model names.
func Models() []string { return registry.Names() }

// Schedulers lists the available scheduler names: registered families
// plus legacy aliases, derived from the scheduler registry so the
// listing cannot drift from what builds.
func Schedulers() []string { return sched.Names() }

// ParseSchedulerSpec parses a scheduler spec string (or legacy name)
// into its canonical SchedulerSpec.
func ParseSchedulerSpec(s string) (SchedulerSpec, error) { return sched.Parse(s) }

// SchedulerUsage renders the spec grammar and the full catalogue of
// families, parameters, and legacy names, derived from the registry.
func SchedulerUsage() string { return sched.Usage() }

// ParseWorkloadSource parses a workload source spec ("model:<name>",
// "trace:<path>", or a bare model name).
func ParseWorkloadSource(s string) SourceSpec { return experiments.ParseSource(s) }

// Run executes a RunSpec — the unified run configuration — returning
// one result per load point. The same RunSpec always names the same
// run: results are deterministic and the spec JSON round-trips.
func Run(rs RunSpec) ([]RunResult, error) { return experiments.Execute(rs) }

// Experiments lists the experiment IDs with their titles.
func Experiments() map[string]string {
	out := map[string]string{}
	for _, r := range experiments.All() {
		out[r.ID] = r.Title
	}
	return out
}

// Generate produces a synthetic workload from a named model.
func Generate(modelName string, cfg ModelConfig) (*Workload, error) {
	m, err := registry.New(modelName)
	if err != nil {
		return nil, err
	}
	return m.Generate(cfg), nil
}

// Simulate runs a workload under a scheduler named by a spec string
// (or legacy name) and returns the raw result; call Result.Report for
// aggregate metrics.
func Simulate(w *Workload, scheduler string, opts SimOptions) (*SimResult, error) {
	s, err := sched.New(scheduler)
	if err != nil {
		return nil, err
	}
	return sim.Run(w, s, opts)
}

// ReadSWF parses a standard workload file from r.
func ReadSWF(r io.Reader) (*SWFLog, error) { return swf.Read(r) }

// WriteSWF serializes a standard workload file to w.
func WriteSWF(w io.Writer, log *SWFLog) error { return swf.Write(w, log) }

// ValidateSWF returns the standard's consistency findings as strings
// (empty = clean).
func ValidateSWF(log *SWFLog) []string {
	var out []string
	for _, v := range swf.Validate(log) {
		out = append(out, v.String())
	}
	return out
}

// CleanSWF reduces a raw log to the canonical workload-study view and
// reports what was changed.
func CleanSWF(log *SWFLog) (*SWFLog, string) {
	clean, rep := swf.Clean(log)
	return clean, fmt.Sprintf("%d records in, %d out (%d partials, %d no-runtime, %d no-procs dropped; %d CPU clamps)",
		rep.Input, rep.Output, rep.DroppedPartials, rep.DroppedNoRuntime, rep.DroppedNoProcs, rep.ClampedCPU)
}

// WorkloadFromSWF converts a clean standard log into a workload.
func WorkloadFromSWF(log *SWFLog) (*Workload, error) { return core.FromSWF(log) }

// OpenTrace loads, cleans, and converts the SWF log at path into a
// reusable workload source: rescale it to target offered loads, and
// derive deterministic per-replication resampled variants.
func OpenTrace(path string) (*TraceSource, error) { return trace.Open(path) }

// TraceFromLog builds a workload source from an already-parsed log.
func TraceFromLog(name string, log *SWFLog) (*TraceSource, error) {
	return trace.FromLog(name, log)
}

// WorkloadToSWF converts a workload into a standard log.
func WorkloadToSWF(w *Workload) *SWFLog { return core.ToSWF(w) }

// InferFeedback inserts preceding-job/think-time dependencies using the
// paper's same-user rapid-succession heuristic; it returns how many
// jobs were linked.
func InferFeedback(w *Workload, windowSeconds int64) int {
	return core.InferFeedback(w, windowSeconds).LinkedJobs
}

// RecordSWF converts a simulation result into the standard workload
// file the simulated machine's accounting system would have written
// (waits filled in, kills as partial-execution records), closing the
// simulate → record → re-analyze loop of the paper's Section 3.3.
func RecordSWF(w *Workload, res *SimResult) *SWFLog { return sim.RecordSWF(w, res) }

// DefaultExperimentConfig returns the EXPERIMENTS.md-scale battery
// configuration; QuickExperimentConfig the seconds-scale one. Both are
// starting points: set Source, Loads, or Scheds before running.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig returns a seconds-scale configuration.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// RunExperimentConfig executes one experiment (E1..E10) under an
// explicit configuration. A zero ExperimentConfig means the defaults.
func RunExperimentConfig(id string, cfg ExperimentConfig) ([]ExperimentTable, error) {
	r, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("parsched: unknown experiment %q", id)
	}
	return r.Run(cfg)
}

// RunExperimentsConfig executes the whole battery in order, serially,
// under an explicit configuration.
func RunExperimentsConfig(cfg ExperimentConfig) ([]ExperimentTable, error) {
	var tables []ExperimentTable
	for _, r := range experiments.All() {
		ts, err := r.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("parsched: %s: %w", r.ID, err)
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}

// RunBatteryConfig shards the whole battery (experiments ×
// replications) across a bounded worker pool with deterministic
// per-cell seeds; see experiments.RunBatch for the semantics.
func RunBatteryConfig(ctx context.Context, cfg ExperimentConfig, opts BatchOptions) *BatchResult {
	return experiments.RunBatch(ctx, experiments.All(), cfg, opts)
}

// quickOr maps the legacy quick flag onto a configuration.
func quickOr(quick bool) ExperimentConfig {
	if quick {
		return experiments.QuickConfig()
	}
	return experiments.Default()
}

// RunExperiment executes one experiment (E1..E10); quick shrinks the
// configuration to seconds-scale.
//
// Deprecated: use RunExperimentConfig with an explicit
// ExperimentConfig (QuickExperimentConfig() for quick=true).
func RunExperiment(id string, quick bool) ([]ExperimentTable, error) {
	return RunExperimentConfig(id, quickOr(quick))
}

// RunAllExperiments executes the whole battery in order, serially.
//
// Deprecated: use RunExperimentsConfig with an explicit
// ExperimentConfig.
func RunAllExperiments(quick bool) ([]ExperimentTable, error) {
	return RunExperimentsConfig(quickOr(quick))
}

// RunBattery shards the whole battery (experiments × replications)
// across a bounded worker pool. parallel <= 0 means NumCPU.
//
// Deprecated: use RunBatteryConfig with explicit ExperimentConfig and
// BatchOptions.
func RunBattery(ctx context.Context, quick bool, parallel, reps int) *BatchResult {
	return RunBatteryConfig(ctx, quickOr(quick),
		BatchOptions{Parallel: parallel, Reps: reps})
}
