#!/usr/bin/env bash
# scripts/bench.sh — run the benchmark suite and emit a machine-readable
# perf snapshot so the performance trajectory across PRs has a baseline.
#
# Usage: scripts/bench.sh [out.json]        (default out: BENCH_PR10.json)
#   BENCH=regex    benchmarks to run        (default: .)
#   COUNT=n        -count samples per bench (default: 5)
#   BENCHTIME=d    -benchtime, e.g. 1x      (default: go's 1s)
#   SEED_FROM=f    snapshot whose "current" seeds a fresh baseline
#                  (default: BENCH_PR9.json)
#
# Output format (documented in README "Performance"):
#   {
#     "go": "go1.24.0", "count": 5, "bench": ".",
#     "baseline": { "<name>": {"ns_per_op": N, "b_per_op": N,
#                              "allocs_per_op": N, "samples": N}, ... },
#     "current":  { same shape }
#   }
# Per-benchmark numbers are the minimum over the COUNT samples (least
# scheduler noise). The first run against a fresh output file seeds its
# baseline from the previous PR's "current" figures (SEED_FROM) when
# that snapshot exists, so the new file measures against where the tree
# actually stood, and records itself only when there is no predecessor;
# later runs preserve the existing baseline and replace only "current",
# so speedups stay measured against the numbers recorded before an
# optimization landed.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
SEED_FROM="${SEED_FROM:-BENCH_PR9.json}"
BENCH="${BENCH:-.}"
COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-}"

command -v jq >/dev/null || { echo "bench.sh: jq is required" >&2; exit 1; }

args=(test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT")
if [ -n "$BENCHTIME" ]; then
  args+=(-benchtime "$BENCHTIME")
fi
args+=(./...)

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go "${args[@]}" | tee "$raw"

# Parse `BenchmarkName-P  iters  N ns/op  N B/op  N allocs/op` lines,
# keeping the minimum of each figure across samples.
current="$(awk '
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns     = $(i-1)
    if ($i == "B/op")      bytes  = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
  }
  if (ns == "") next
  if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  cnt[name]++
  if (!(name in minNs)     || ns+0     < minNs[name]+0)     minNs[name] = ns
  if (bytes  != "" && (!(name in minB) || bytes+0  < minB[name]+0))  minB[name] = bytes
  if (allocs != "" && (!(name in minA) || allocs+0 < minA[name]+0))  minA[name] = allocs
}
END {
  printf "{"
  for (i = 1; i <= n; i++) {
    name = order[i]
    if (i > 1) printf ","
    printf "\"%s\":{\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s,\"samples\":%d}", \
      name, minNs[name], (name in minB ? minB[name] : "null"), \
      (name in minA ? minA[name] : "null"), cnt[name]
  }
  printf "}"
}' "$raw")"

if [ -z "$current" ] || [ "$current" = "{}" ]; then
  echo "bench.sh: no benchmark results parsed" >&2
  exit 1
fi

if [ -f "$OUT" ] && jq -e '.baseline' "$OUT" >/dev/null 2>&1; then
  baseline="$(jq -c '.baseline' "$OUT")"
elif [ -f "$SEED_FROM" ] && jq -e '.current' "$SEED_FROM" >/dev/null 2>&1; then
  baseline="$(jq -c '.current' "$SEED_FROM")"
else
  baseline="$current"
fi

jq -n \
  --arg go "$(go version | awk '{print $3}')" \
  --arg bench "$BENCH" \
  --argjson count "$COUNT" \
  --argjson baseline "$baseline" \
  --argjson current "$current" \
  '{go: $go, count: $count, bench: $bench, baseline: $baseline, current: $current}' \
  > "$OUT"

echo "wrote $OUT"
