#!/usr/bin/env bash
# scripts/bench_check.sh — guard against performance regressions.
#
# Reruns a benchmark subset and compares each result against the
# "current" section of a committed perf snapshot (BENCH_PR10.json by
# default). Fails if any shared benchmark regresses by more than
# THRESHOLD percent in ns/op, or allocates more per op than the
# snapshot plus ALLOC_SLACK: ns/op is noisy and gets a tolerance band;
# allocs/op is near-deterministic, but sync.Pool reuse depends on GC
# timing, so pooled benchmarks jitter by an alloc or two around the
# snapshot's min-over-samples — the slack absorbs that jitter while a
# real regression (tens to thousands of allocs) still trips the
# ratchet. When an optimization lowers a benchmark's allocation count,
# re-snapshot to lock in the gain.
#
# Usage: scripts/bench_check.sh [snapshot.json]
#   BENCH=regex      benchmarks to check (default: the BenchmarkAblation
#                    tracked hot-path suite — including the LedgerOn/Off
#                    congested-queue pair — plus the congested
#                    conservative benchmark; fast enough for CI)
#   COUNT=n          samples per bench, min taken (default: 3)
#   THRESHOLD=pct    max allowed ns/op regression (default: 20)
#   ALLOC_SLACK=n    max allowed allocs/op increase (default: 2)
#
# Caveat: ns/op only compares like with like. The committed snapshot
# records one machine's numbers; a much slower runner will trip the
# guard spuriously. The minimum over COUNT samples absorbs scheduler
# noise, and the threshold absorbs machine drift within a hardware
# class — widen THRESHOLD rather than deleting the guard if your CI
# fleet is heterogeneous.
set -euo pipefail
cd "$(dirname "$0")/.."

SNAP="${1:-BENCH_PR10.json}"
BENCH="${BENCH:-BenchmarkAblation|BenchmarkLargeConservativeCongested$}"
COUNT="${COUNT:-3}"
THRESHOLD="${THRESHOLD:-20}"
ALLOC_SLACK="${ALLOC_SLACK:-2}"

command -v jq >/dev/null || { echo "bench_check.sh: jq is required" >&2; exit 1; }
[ -f "$SNAP" ] || { echo "bench_check.sh: snapshot $SNAP not found" >&2; exit 1; }

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$raw"

# Minimum ns/op and allocs/op per benchmark across the samples.
awk '
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = ""; ac = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op") ns = $(i-1)
    if ($i == "allocs/op") ac = $(i-1)
  }
  if (ns == "") next
  if (ac == "") ac = "-"
  if (!(name in minNs) || ns+0 < minNs[name]+0) minNs[name] = ns
  if (ac != "-" && (!(name in minAc) || ac+0 < minAc[name]+0)) minAc[name] = ac
}
END {
  for (name in minNs)
    printf "%s %s %s\n", name, minNs[name], (name in minAc) ? minAc[name] : "-"
}
' "$raw" > "$raw.min"

fail=0
checked=0
while read -r name ns ac; do
  ref="$(jq -r --arg n "$name" '.current[$n].ns_per_op // empty' "$SNAP")"
  [ -n "$ref" ] || continue
  checked=$((checked + 1))
  # allowed = ref * (100 + THRESHOLD) / 100, in integer ns
  allowed=$(( (ref * (100 + THRESHOLD)) / 100 ))
  if [ "${ns%.*}" -gt "$allowed" ]; then
    echo "REGRESSION: $name ${ns%.*} ns/op > ${allowed} ns/op (snapshot ${ref} +${THRESHOLD}%)"
    fail=1
  else
    echo "ok: $name ${ns%.*} ns/op (snapshot ${ref}, limit ${allowed})"
  fi
  # Allocation ratchet: the count is near-deterministic (only
  # GC-timing-dependent pool reuse jitters it), so the tolerance is a
  # small absolute slack, not a percentage band.
  refAc="$(jq -r --arg n "$name" '.current[$n].allocs_per_op // empty' "$SNAP")"
  [ -n "$refAc" ] && [ "$ac" != "-" ] || continue
  allowedAc=$(( refAc + ALLOC_SLACK ))
  if [ "${ac%.*}" -gt "$allowedAc" ]; then
    echo "REGRESSION: $name ${ac%.*} allocs/op > snapshot ${refAc} + slack ${ALLOC_SLACK} (ratchet)"
    fail=1
  else
    echo "ok: $name ${ac%.*} allocs/op (snapshot ${refAc}, limit ${allowedAc})"
  fi
done < "$raw.min"
rm -f "$raw.min"

if [ "$checked" -eq 0 ]; then
  echo "bench_check.sh: no benchmark in $BENCH overlaps the snapshot" >&2
  exit 1
fi
exit "$fail"
