package parsched

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeGenerateSimulateReport(t *testing.T) {
	w, err := Generate("lublin99", ModelConfig{MaxNodes: 64, Jobs: 300, Seed: 1, Load: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(w, "easy", SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report(64)
	if r.Finished != 300 {
		t.Fatalf("finished %d/300", r.Finished)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v", r.Utilization)
	}
}

func TestFacadeUnknownNames(t *testing.T) {
	if _, err := Generate("nope", ModelConfig{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	w, _ := Generate("naive", ModelConfig{MaxNodes: 8, Jobs: 10, Seed: 1})
	if _, err := Simulate(w, "nope", SimOptions{}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := RunExperiment("E42", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeSWFPipeline(t *testing.T) {
	w, _ := Generate("feitelson96", ModelConfig{MaxNodes: 32, Jobs: 100, Seed: 2, Load: 0.6})
	log := WorkloadToSWF(w)
	if findings := ValidateSWF(log); len(findings) != 0 {
		t.Fatalf("generated log has findings: %v", findings[0])
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clean, summary := CleanSWF(back)
	if !strings.Contains(summary, "100 records in") {
		t.Fatalf("clean summary: %s", summary)
	}
	w2, err := WorkloadFromSWF(clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Jobs) != 100 {
		t.Fatalf("round trip lost jobs: %d", len(w2.Jobs))
	}
}

func TestFacadeInferFeedback(t *testing.T) {
	w, _ := Generate("lublin99", ModelConfig{MaxNodes: 64, Jobs: 500, Seed: 3, Load: 0.7})
	linked := InferFeedback(w, 3600)
	if linked <= 0 {
		t.Fatal("no feedback chains inferred on a lublin workload")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(Models()) != 5 {
		t.Fatalf("models: %v", Models())
	}
	if len(Schedulers()) != 12 {
		t.Fatalf("schedulers: %v", Schedulers())
	}
	exps := Experiments()
	if len(exps) != 10 || exps["E1"] == "" {
		t.Fatalf("experiments: %v", exps)
	}
}

func TestFacadeRunExperimentQuick(t *testing.T) {
	tables, err := RunExperiment("E3", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatal("E3 produced no rows")
	}
	if !strings.Contains(tables[0].String(), "ranking") {
		t.Fatal("table rendering broken")
	}
}
