package parsched

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeGenerateSimulateReport(t *testing.T) {
	w, err := Generate("lublin99", ModelConfig{MaxNodes: 64, Jobs: 300, Seed: 1, Load: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(w, "easy", SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report(64)
	if r.Finished != 300 {
		t.Fatalf("finished %d/300", r.Finished)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v", r.Utilization)
	}
}

// TestFacadeStreamingCollector drives the whole streaming pipeline
// through the public surface: a collector attached as a simulation
// observer, with warmup truncation and time-series sampling, matching
// the batch report where it should.
func TestFacadeStreamingCollector(t *testing.T) {
	w, err := Generate("lublin99", ModelConfig{MaxNodes: 64, Jobs: 300, Seed: 1, Load: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(CollectorOptions{Scheduler: "easy", Workload: w.Name, Procs: 64})
	res, err := Simulate(w, "easy", SimOptions{
		Observers:   []SimObserver{col},
		SampleEvery: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := res.Report(64)
	stream := col.Report()
	if stream.Finished != batch.Finished || stream.Wait.Mean != batch.Wait.Mean ||
		stream.Wait.P99 != batch.Wait.P99 || stream.Utilization != batch.Utilization {
		t.Fatalf("streamed report diverges:\n stream %+v\n batch  %+v", stream, batch)
	}
	if ts := col.Series(); ts == nil || len(ts.Samples) == 0 {
		t.Fatal("no time series recorded")
	}
	// A RunSpec carries the same collector configuration.
	spec, err := ParseSchedulerSpec("easy")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(RunSpec{
		Scheduler: spec,
		Source:    ParseWorkloadSource("model:lublin99"),
		Jobs:      300, Nodes: 64, Seed: 1,
		Loads:   []float64{0.7},
		Metrics: MetricsSpec{WarmupJobs: 50, Tau: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0].Report; r.Truncated != 50 || r.Tau != 60 {
		t.Fatalf("metrics spec not honoured: %+v", r)
	}
}

func TestFacadeUnknownNames(t *testing.T) {
	if _, err := Generate("nope", ModelConfig{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	w, _ := Generate("naive", ModelConfig{MaxNodes: 8, Jobs: 10, Seed: 1})
	if _, err := Simulate(w, "nope", SimOptions{}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := RunExperiment("E42", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeSWFPipeline(t *testing.T) {
	w, _ := Generate("feitelson96", ModelConfig{MaxNodes: 32, Jobs: 100, Seed: 2, Load: 0.6})
	log := WorkloadToSWF(w)
	if findings := ValidateSWF(log); len(findings) != 0 {
		t.Fatalf("generated log has findings: %v", findings[0])
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clean, summary := CleanSWF(back)
	if !strings.Contains(summary, "100 records in") {
		t.Fatalf("clean summary: %s", summary)
	}
	w2, err := WorkloadFromSWF(clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Jobs) != 100 {
		t.Fatalf("round trip lost jobs: %d", len(w2.Jobs))
	}
}

func TestFacadeInferFeedback(t *testing.T) {
	w, _ := Generate("lublin99", ModelConfig{MaxNodes: 64, Jobs: 500, Seed: 3, Load: 0.7})
	linked := InferFeedback(w, 3600)
	if linked <= 0 {
		t.Fatal("no feedback chains inferred on a lublin workload")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(Models()) != 5 {
		t.Fatalf("models: %v", Models())
	}
	// 9 families + 6 legacy aliases, derived from the registry (the
	// pre-registry listing omitted gang2/gang3/gang5).
	if len(Schedulers()) != 15 {
		t.Fatalf("schedulers: %v", Schedulers())
	}
	// Every listed scheduler must build — the facade-level view of the
	// anti-drift regression.
	w, _ := Generate("naive", ModelConfig{MaxNodes: 8, Jobs: 5, Seed: 1})
	for _, name := range Schedulers() {
		if _, err := Simulate(w, name, SimOptions{}); err != nil {
			t.Errorf("listed scheduler %q: %v", name, err)
		}
	}
	exps := Experiments()
	if len(exps) != 10 || exps["E1"] == "" {
		t.Fatalf("experiments: %v", exps)
	}
}

func TestFacadeSpecAPI(t *testing.T) {
	sp, err := ParseSchedulerSpec("easy(reserve=2, window)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.String() != "easy(reserve=2, window)" {
		t.Fatalf("canonical form: %q", sp.String())
	}
	if !strings.Contains(SchedulerUsage(), "reserve") {
		t.Fatal("usage text missing parameters")
	}
	results, err := Run(RunSpec{
		Scheduler: sp,
		Source:    ParseWorkloadSource("model:lublin99"),
		Jobs:      200, Nodes: 32, Seed: 9,
		Loads: []float64{0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Report.Finished != 200 {
		t.Fatalf("run results: %+v", results)
	}
}

func TestFacadeConfigEntryPoints(t *testing.T) {
	tables, err := RunExperimentConfig("E3", QuickExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatal("E3 produced no rows")
	}
	// The deprecated shim must agree with the explicit-config path.
	legacy, err := RunExperiment("E3", true)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].String() != legacy[0].String() {
		t.Fatal("deprecated shim diverges from RunExperimentConfig")
	}
}

func TestFacadeRunExperimentQuick(t *testing.T) {
	tables, err := RunExperiment("E3", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatal("E3 produced no rows")
	}
	if !strings.Contains(tables[0].String(), "ranking") {
		t.Fatal("table rendering broken")
	}
}
