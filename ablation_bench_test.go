package parsched

// Ablation benchmarks for the design choices DESIGN.md calls out. These
// measure the *cost* of each feature (wall time of the simulation); the
// corresponding *benefit* numbers are the experiment tables (estimate
// quality → E1/backfill-study, window awareness → E5/E6, gang
// multiprogramming level → gang tests). Comparing the paired benches
// quantifies what each capability costs the simulator.

import (
	"testing"

	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/stats"
)

// ablationWorkload is shared by all ablation benches.
func ablationWorkload() *Workload {
	return lublin.Default().Generate(ModelConfig{
		MaxNodes: 128, Jobs: 2000, Seed: 1234, Load: 0.8, EstimateFactor: 2,
	})
}

// BenchmarkAblationEstimatesUser measures EASY consuming user
// estimates (the realistic configuration).
func BenchmarkAblationEstimatesUser(b *testing.B) {
	w := ablationWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewEASY(), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimatesPerfect measures EASY with oracle runtimes
// (the upper bound backfilling evaluations compare against).
func BenchmarkAblationEstimatesPerfect(b *testing.B) {
	w := ablationWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewEASY(), sim.Options{PerfectEstimates: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// heavyReservations builds the dense reservation calendar that made the
// naive per-candidate profile rebuild quadratic (the regression that
// motivated the pass-level profile cache and the planning horizon).
func heavyReservations(w *Workload) []sched.Reservation {
	span := w.Span()
	var out []sched.Reservation
	id := int64(1)
	for start := int64(4 * 3600); start < span; start += 4 * 3600 {
		out = append(out, sched.Reservation{
			ID: id, Procs: 24, Start: start, End: start + 2*3600,
		})
		id++
	}
	return out
}

// BenchmarkAblationWindowsOff: reservation stream present but the
// scheduler ignores it (baseline cost).
func BenchmarkAblationWindowsOff(b *testing.B) {
	w := ablationWorkload()
	resvs := heavyReservations(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewEASY(), sim.Options{Reservations: resvs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindowsOn: the window-aware scheduler plans around
// the same calendar — the price of honouring reservations.
func BenchmarkAblationWindowsOn(b *testing.B) {
	w := ablationWorkload()
	resvs := heavyReservations(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewEASYWindows(), sim.Options{Reservations: resvs}); err != nil {
			b.Fatal(err)
		}
	}
}

// congestedAblationWorkload is the small-scale deep-queue burst for the
// ledger ablation pair: the same construction as the committed
// BenchmarkLargeConservativeCongested trajectory bench (arrivals
// compressed into a burst, runtimes stretched past the horizon), sized
// so the from-scratch arm still finishes in CI time.
func congestedAblationWorkload() *Workload {
	w := lublin.Default().Generate(ModelConfig{
		MaxNodes: 128, Jobs: 700, Seed: 99, Load: 0.9, EstimateFactor: 2,
	})
	for i, j := range w.Jobs {
		j.Submit = int64(i) * 5
		j.Runtime = congestedAblationHorizon + 3600 + int64(i%7)*600
		j.Estimate = 2 * j.Runtime
	}
	return w
}

const congestedAblationHorizon = int64(28800)

func benchCongestedCons(b *testing.B, disableLedger bool) {
	w := congestedAblationWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &sched.Conservative{DisableLedger: disableLedger}
		res, err := sim.Run(w, s, sim.Options{Horizon: congestedAblationHorizon})
		if err != nil {
			b.Fatal(err)
		}
		started := 0
		for _, o := range res.Outcomes {
			if o.Start >= 0 {
				started++
			}
		}
		if started == 0 || started == len(res.Outcomes) {
			b.Fatalf("not congested: %d of %d started", started, len(res.Outcomes))
		}
	}
}

// BenchmarkAblationLedgerOn: conservative backfilling over the deep-
// queue burst with resumable passes (the default configuration).
func BenchmarkAblationLedgerOn(b *testing.B) { benchCongestedCons(b, false) }

// BenchmarkAblationLedgerOff: the identical run re-deriving every
// reservation from scratch on every event — the pre-ledger behavior,
// kept measurable as the cost of the quadratic walk.
func BenchmarkAblationLedgerOff(b *testing.B) { benchCongestedCons(b, true) }

// BenchmarkAblationGang2 and Gang5 measure the event-rate cost of the
// multiprogramming level (more rows = more rate rebalances per event).
func BenchmarkAblationGang2(b *testing.B) { benchGang(b, 2) }

// BenchmarkAblationGang5 is the 5-row variant.
func BenchmarkAblationGang5(b *testing.B) { benchGang(b, 5) }

func benchGang(b *testing.B, slots int) {
	w := ablationWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewGang(slots), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOutageReplay measures the cost of dense outage
// injection (kill/restart machinery) relative to the clean runs above.
func BenchmarkAblationOutageReplay(b *testing.B) {
	w := ablationWorkload()
	olog := outage.Generate(outage.GeneratorConfig{
		Nodes: 128, Horizon: w.Span() + 86400,
		MTBF:   stats.Exponential{Lambda: 1.0 / 14400},
		Repair: stats.Constant{C: 1800},
	}, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewEASY(), sim.Options{Outages: olog}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMemAware measures allocation with per-node memory
// constraints against the unconstrained allocator.
func BenchmarkAblationMemAware(b *testing.B) {
	w := lublin.Default().Generate(ModelConfig{
		MaxNodes: 128, Jobs: 2000, Seed: 1234, Load: 0.8, Memory: true,
	})
	mems := make([]int64, 128)
	for i := range mems {
		mems[i] = int64(1+i%4) * 512 * 1024
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.NewFirstFit(), sim.Options{NodeMem: mems, MemAware: true}); err != nil {
			b.Fatal(err)
		}
	}
}
