module parsched

go 1.24
